package obs

import (
	"encoding/json"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The nil Counter
// is a valid no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n; nil-safe.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one; nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; nil-safe (returns 0).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 instantaneous value (e.g. shard frame
// count, last epoch wall time). The nil Gauge is a valid no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v; nil-safe.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the stored value; nil-safe (returns 0).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with 2^(i-1) < v ≤ 2^i-ish (exact rule: i =
// bits.Len64(v)), so bucket 0 holds v=0, bucket 1 holds v=1, bucket 11
// holds 513..1024ns ≈ 1µs, bucket 64 holds the int64 tail.
const histBuckets = 65

// Histogram is a lock-free power-of-two-bucketed histogram of int64
// observations (latencies in nanoseconds, byte counts, flop counts).
// The nil Histogram is a valid no-op.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketIdx maps an observation to its bucket.
func bucketIdx(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// bucketUpper is the inclusive upper bound of bucket i.
func bucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return 1<<i - 1
}

// Observe records one value; nil-safe and allocation-free.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if h.count.Add(1) == 1 {
		// First observation seeds min/max; racing observers fix any
		// interleaving through the CAS loops below.
		h.min.Store(v)
		h.max.Store(v)
	}
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketIdx(v)].Add(1)
}

// Count returns the number of observations; nil-safe.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations; nil-safe.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the mean observation, 0 when empty; nil-safe.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Min returns the smallest observation, 0 when empty; nil-safe.
func (h *Histogram) Min() int64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest observation, 0 when empty; nil-safe.
func (h *Histogram) Max() int64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.max.Load()
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile (0 ≤ q ≤ 1) — an over-estimate by at most 2×, which is all a
// power-of-two histogram can promise; nil-safe.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	target := int64(q*float64(n) + 0.5)
	if target < 1 {
		target = 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= target {
			return bucketUpper(i)
		}
	}
	return h.Max()
}

// Registry is a name-keyed collection of counters, gauges and
// histograms, safe for concurrent use. Instruments are created on first
// reference and live for the registry's lifetime, so hot paths should
// look them up once and hold the pointer. The nil Registry hands out nil
// instruments, which are themselves no-ops.
type Registry struct {
	mu    sync.Mutex
	ctrs  map[string]*Counter
	gaugs map[string]*Gauge
	hists map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:  make(map[string]*Counter),
		gaugs: make(map[string]*Gauge),
		hists: make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter; nil-safe.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.ctrs[name]
	if c == nil {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge; nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gaugs[name]
	if g == nil {
		g = &Gauge{}
		r.gaugs[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram; nil-safe.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// CounterSnap is one counter in a registry snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnap is one gauge in a registry snapshot.
type GaugeSnap struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// BucketSnap is one non-empty histogram bucket: Count observations were
// ≤ Le (and above the previous bucket's bound).
type BucketSnap struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistSnap is one histogram in a registry snapshot.
type HistSnap struct {
	Name    string       `json:"name"`
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Min     int64        `json:"min"`
	Max     int64        `json:"max"`
	Mean    float64      `json:"mean"`
	P50     int64        `json:"p50"`
	P99     int64        `json:"p99"`
	Buckets []BucketSnap `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of a registry, ready for JSON export
// or report rendering.
type Snapshot struct {
	Counters   []CounterSnap `json:"counters"`
	Gauges     []GaugeSnap   `json:"gauges"`
	Histograms []HistSnap    `json:"histograms"`
}

// Snapshot captures the registry's current state with every instrument
// list sorted by name; nil-safe (returns an empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	// Emit every instrument class in sorted-name order: building the
	// snapshot by ranging over the maps directly would assemble the
	// float-carrying slices in randomized map order (the maporderfloat
	// hazard), and repeated exports must be byte-identical.
	for _, name := range sortedKeys(r.ctrs) {
		s.Counters = append(s.Counters, CounterSnap{Name: name, Value: r.ctrs[name].Value()})
	}
	for _, name := range sortedKeys(r.gaugs) {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: name, Value: r.gaugs[name].Value()})
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		hs := HistSnap{
			Name: name, Count: h.Count(), Sum: h.Sum(),
			Min: h.Min(), Max: h.Max(), Mean: h.Mean(),
			P50: h.Quantile(0.50), P99: h.Quantile(0.99),
		}
		for i := 0; i < histBuckets; i++ {
			if n := h.buckets[i].Load(); n > 0 {
				hs.Buckets = append(hs.Buckets, BucketSnap{Le: bucketUpper(i), Count: n})
			}
		}
		s.Histograms = append(s.Histograms, hs)
	}
	return s
}

// sortedKeys returns m's keys in sorted order, the deterministic
// iteration every exported snapshot is built with.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteJSON writes the registry snapshot as indented JSON; nil-safe.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
