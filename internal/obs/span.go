package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Event is one completed span: a named interval on a rank's track.
// Start is relative to the tracer's epoch.
type Event struct {
	Name  string
	Rank  int
	Start time.Duration
	Dur   time.Duration
}

// Tracer collects spans from any number of goroutines ("ranks" of the
// in-process fabric or threads of one real rank) and exports them as
// Chrome trace-event JSON. The nil Tracer is a valid, disabled tracer:
// Begin returns a no-op Span without reading the clock or allocating.
type Tracer struct {
	now   func() time.Time // clock; replaceable by tests
	epoch time.Time

	mu     sync.Mutex
	events []Event
}

// NewTracer returns a tracer whose epoch (trace time zero) is now.
func NewTracer() *Tracer {
	t := &Tracer{now: time.Now}
	t.epoch = t.now()
	return t
}

// Span is an open interval returned by Begin; call End exactly once.
// The zero Span (from a nil tracer) is a valid no-op.
type Span struct {
	t     *Tracer
	name  string
	rank  int
	start time.Time
}

// Begin opens a span named name on the given rank's track; nil-safe.
func (t *Tracer) Begin(rank int, name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, rank: rank, start: t.now()}
}

// End closes the span and records it; no-op on a zero Span.
func (s Span) End() {
	if s.t == nil {
		return
	}
	end := s.t.now()
	ev := Event{
		Name:  s.name,
		Rank:  s.rank,
		Start: s.start.Sub(s.t.epoch),
		Dur:   end.Sub(s.start),
	}
	s.t.mu.Lock()
	s.t.events = append(s.t.events, ev)
	s.t.mu.Unlock()
}

// Events returns a copy of the recorded spans sorted by start time then
// rank; nil-safe (returns nil).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}

// Ranks returns the distinct ranks that recorded at least one span, in
// ascending order; nil-safe.
func (t *Tracer) Ranks() []int {
	seen := map[int]bool{}
	for _, ev := range t.Events() {
		seen[ev.Rank] = true
	}
	ranks := make([]int, 0, len(seen))
	for r := range seen {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	return ranks
}

// chromeEvent is one entry of the Chrome trace-event format ("X" =
// complete event, "M" = metadata). Timestamps and durations are in
// microseconds, the unit the format specifies.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of the trace-event format, the
// shape chrome://tracing and Perfetto both accept.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes all recorded spans in Chrome trace-event JSON.
// Each rank becomes one process track (pid = rank), labeled by a
// process_name metadata event; rank 0 is the master in the trainer's
// convention. Open the file at chrome://tracing or https://ui.perfetto.dev.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	ranks := map[int]bool{}
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for _, ev := range events {
		if !ranks[ev.Rank] {
			ranks[ev.Rank] = true
			label := fmt.Sprintf("rank %d", ev.Rank)
			if ev.Rank == 0 {
				label = "rank 0 (master)"
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "process_name", Ph: "M", Pid: ev.Rank,
				Args: map[string]any{"name": label},
			})
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: ev.Name, Ph: "X", Pid: ev.Rank, Tid: ev.Rank,
			Ts:  float64(ev.Start.Nanoseconds()) / 1e3,
			Dur: float64(ev.Dur.Nanoseconds()) / 1e3,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
