package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one completed span: a named interval on a rank's track.
// Start is relative to the tracer's epoch.
type Event struct {
	Name  string
	Rank  int
	Start time.Duration
	Dur   time.Duration
}

// DefaultTracerCap bounds the spans a NewTracer retains. At ~48 bytes
// per Event the default ring tops out around 12 MiB per rank, after
// which the oldest spans are overwritten (and counted by Dropped) —
// long elastic runs must never OOM the tracer.
const DefaultTracerCap = 1 << 18

// Tracer collects spans from any number of goroutines ("ranks" of the
// in-process fabric or threads of one real rank) and exports them as
// Chrome trace-event JSON. Storage is a bounded ring: when the capacity
// is reached the oldest span is dropped and the Dropped counter
// incremented, so tracing a long run costs bounded memory. The nil
// Tracer is a valid, disabled tracer: Begin returns a no-op Span
// without reading the clock or allocating.
type Tracer struct {
	now   func() time.Time // clock; replaceable by tests
	epoch time.Time
	cap   int

	mu      sync.Mutex
	events  []Event // ring storage, len <= cap
	start   int     // index of the oldest event when the ring is full
	dropped atomic.Int64
}

// NewTracer returns a tracer with the default span capacity whose epoch
// (trace time zero) is now.
func NewTracer() *Tracer { return NewTracerSize(0) }

// NewTracerSize returns a tracer retaining at most size spans
// (DefaultTracerCap when size <= 0); the oldest spans are dropped —
// and counted — once the ring fills.
func NewTracerSize(size int) *Tracer {
	if size <= 0 {
		size = DefaultTracerCap
	}
	t := &Tracer{now: time.Now, cap: size}
	t.epoch = t.now()
	return t
}

// Epoch returns the tracer's trace-time zero in wall-clock terms — the
// reference the telemetry plane's clock-offset correction aligns across
// ranks; nil-safe (returns the zero time).
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// Dropped returns the number of spans overwritten by the ring's drop
// policy since construction (or the last Drain); nil-safe.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Span is an open interval returned by Begin; call End exactly once.
// The zero Span (from a nil tracer) is a valid no-op.
type Span struct {
	t     *Tracer
	name  string
	rank  int
	start time.Time
}

// Begin opens a span named name on the given rank's track; nil-safe.
func (t *Tracer) Begin(rank int, name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, rank: rank, start: t.now()}
}

// End closes the span and records it; no-op on a zero Span.
func (s Span) End() {
	if s.t == nil {
		return
	}
	end := s.t.now()
	ev := Event{
		Name:  s.name,
		Rank:  s.rank,
		Start: s.start.Sub(s.t.epoch),
		Dur:   end.Sub(s.start),
	}
	t := s.t
	t.mu.Lock()
	if len(t.events) < t.cap {
		t.events = append(t.events, ev)
	} else {
		t.events[t.start] = ev
		t.start = (t.start + 1) % t.cap
		t.dropped.Add(1)
	}
	t.mu.Unlock()
}

// snapshotLocked copies the retained events oldest-first; callers hold mu.
func (t *Tracer) snapshotLocked() []Event {
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.start:]...)
	out = append(out, t.events[:t.start]...)
	return out
}

// Events returns a copy of the recorded spans sorted by start time then
// rank; nil-safe (returns nil).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := t.snapshotLocked()
	t.mu.Unlock()
	SortEvents(out)
	return out
}

// Drain returns the retained spans (sorted like Events) and clears the
// ring, so the caller — the telemetry plane's per-iteration shipper —
// receives each span exactly once. The dropped counter is reset too and
// its pre-drain value returned; nil-safe.
func (t *Tracer) Drain() ([]Event, int64) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	out := t.snapshotLocked()
	t.events = t.events[:0]
	t.start = 0
	dropped := t.dropped.Swap(0)
	t.mu.Unlock()
	SortEvents(out)
	return out, dropped
}

// SortEvents orders events by start time, then longer-first (so a parent
// span precedes children opening at the same instant), then rank.
func SortEvents(out []Event) {
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Dur != out[j].Dur {
			return out[i].Dur > out[j].Dur
		}
		return out[i].Rank < out[j].Rank
	})
}

// Ranks returns the distinct ranks that recorded at least one span, in
// ascending order; nil-safe.
func (t *Tracer) Ranks() []int {
	seen := map[int]bool{}
	for _, ev := range t.Events() {
		seen[ev.Rank] = true
	}
	ranks := make([]int, 0, len(seen))
	for r := range seen {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	return ranks
}
