package telemetry

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/mpi"
)

// clockServeDeadline bounds each worker-side wait for the next ping so
// a dead master cannot wedge a worker inside the handshake.
const clockServeDeadline = 10 * time.Second

// SyncClocks measures worker's clock offset from this rank with rounds
// RTT ping/pong exchanges on mpi.TagClockSync and returns the estimate
// from the minimum-RTT round (the round least polluted by queueing
// noise, the standard NTP trick). The offset is worker-clock minus
// local-clock: subtract it from a worker timestamp to land on the local
// timebase. deadline bounds each pong wait.
func SyncClocks(c *mpi.Comm, worker, rounds int, deadline time.Duration) (offset, rtt time.Duration, err error) {
	if rounds <= 0 {
		rounds = DefaultClockSyncRounds
	}
	if deadline <= 0 {
		deadline = DefaultDeadline
	}
	ping := make([]byte, 4)
	best := time.Duration(1<<63 - 1)
	for i := 0; i < rounds; i++ {
		binary.LittleEndian.PutUint32(ping, uint32(i))
		t0 := time.Now()
		if err := c.SendBytes(worker, mpi.TagClockSync, ping); err != nil {
			return 0, 0, fmt.Errorf("telemetry: clock ping to rank %d: %w", worker, err)
		}
		msg, err := c.RecvBytesTimeout(worker, mpi.TagClockSync, deadline)
		if err != nil {
			return 0, 0, fmt.Errorf("telemetry: clock pong from rank %d: %w", worker, err)
		}
		t1 := time.Now()
		if len(msg.Data) != 12 || binary.LittleEndian.Uint32(msg.Data) != uint32(i) {
			return 0, 0, fmt.Errorf("telemetry: bad clock pong from rank %d (len %d)", worker, len(msg.Data))
		}
		tw := int64(binary.LittleEndian.Uint64(msg.Data[4:]))
		r := t1.Sub(t0)
		if r < best {
			// The worker stamped tw somewhere inside [t0, t1]; assume
			// the midpoint, so the estimate's error is bounded by rtt/2.
			best = r
			offset = time.Duration(tw - t0.Add(r/2).UnixNano())
		}
	}
	return offset, best, nil
}

// ServeClockSync answers rounds clock pings from master: each ping is
// echoed back with this rank's wall-clock nanoseconds appended. Workers
// call this at session start, mirroring the master's SyncClocks.
func ServeClockSync(c *mpi.Comm, master, rounds int) error {
	if rounds <= 0 {
		rounds = DefaultClockSyncRounds
	}
	reply := make([]byte, 12)
	for i := 0; i < rounds; i++ {
		msg, err := c.RecvBytesTimeout(master, mpi.TagClockSync, clockServeDeadline)
		if err != nil {
			return fmt.Errorf("telemetry: clock ping %d: %w", i, err)
		}
		if len(msg.Data) >= 4 {
			copy(reply[:4], msg.Data[:4])
		}
		binary.LittleEndian.PutUint64(reply[4:], uint64(time.Now().UnixNano()))
		if err := c.SendBytes(master, mpi.TagClockSync, reply); err != nil {
			return fmt.Errorf("telemetry: clock pong %d: %w", i, err)
		}
	}
	return nil
}
