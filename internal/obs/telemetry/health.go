package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"sync"
)

// WorkerState is one worker's liveness as seen by the master.
type WorkerState string

// Worker states surfaced at /healthz.
const (
	// WorkerLive: the worker is answering the runtime.
	WorkerLive WorkerState = "live"
	// WorkerEvicted: the elastic runtime evicted the worker.
	WorkerEvicted WorkerState = "evicted"
)

// Health is the live run state behind /healthz: the session phase, each
// worker's liveness, and training progress. All methods are cheap and
// safe for concurrent use; the nil Health is a valid no-op.
type Health struct {
	mu        sync.Mutex
	state     string
	workers   map[int]WorkerState
	evictions int
	iter      int
	loss      float64
}

// NewHealth builds a tracker in the "init" state.
func NewHealth() *Health {
	return &Health{state: "init", workers: map[int]WorkerState{}}
}

// SetState records the session phase ("init", "training", "degraded",
// "done", "failed"); nil-safe.
func (h *Health) SetState(state string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.state = state
	h.mu.Unlock()
}

// SetWorker records one worker's liveness; an eviction bumps the
// eviction count; nil-safe.
func (h *Health) SetWorker(rank int, s WorkerState) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if s == WorkerEvicted && h.workers[rank] != WorkerEvicted {
		h.evictions++
	}
	h.workers[rank] = s
	h.mu.Unlock()
}

// SetProgress records the training iteration and loss; nil-safe.
func (h *Health) SetProgress(iter int, loss float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.iter = iter
	h.loss = loss
	h.mu.Unlock()
}

// healthView is the JSON shape /healthz serves.
type healthView struct {
	State     string              `json:"state"`
	Workers   map[string]string   `json:"workers"`
	Live      int                 `json:"live"`
	Evictions int                 `json:"evictions"`
	Iter      int                 `json:"iter"`
	Loss      float64             `json:"loss"`
}

// Healthy reports whether the run is in a good state: not failed, and
// no worker currently evicted; nil-safe (a disabled tracker is
// healthy).
func (h *Health) Healthy() bool {
	if h == nil {
		return true
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state == "failed" {
		return false
	}
	for _, s := range h.workers {
		if s != WorkerLive {
			return false
		}
	}
	return true
}

// WriteJSON writes the current state as JSON; nil-safe.
func (h *Health) WriteJSON(w io.Writer) error {
	v := healthView{State: "disabled", Workers: map[string]string{}}
	if h != nil {
		h.mu.Lock()
		v.State = h.state
		v.Evictions = h.evictions
		v.Iter = h.iter
		v.Loss = h.loss
		ranks := make([]int, 0, len(h.workers))
		for r := range h.workers {
			ranks = append(ranks, r)
		}
		sort.Ints(ranks)
		for _, r := range ranks {
			v.Workers[strconv.Itoa(r)] = string(h.workers[r])
			if h.workers[r] == WorkerLive {
				v.Live++
			}
		}
		h.mu.Unlock()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
