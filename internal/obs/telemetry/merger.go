package telemetry

import (
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Merger is the master-side aggregation point: it ingests WorkerBundles
// (and the master's own drained observer), rebases every span onto one
// timebase using the clock offsets measured by SyncClocks, and serves
// the merged result — a single Chrome/Perfetto trace, per-rank metric
// snapshots, and a merged event log. Safe for concurrent use (the HTTP
// endpoint scrapes it while the training loop ingests). The nil Merger
// is a valid no-op.
type Merger struct {
	epoch time.Time // timebase zero: the master tracer's epoch
	cap   int

	mu       sync.Mutex
	events   []obs.Event // merged span ring, len <= cap
	start    int
	dropped  int64                  // spans overwritten by the merged ring
	offsets  map[int]time.Duration  // rank → (worker clock − master clock)
	latest   map[int]obs.Snapshot   // rank → newest metrics snapshot
	prev     map[int]obs.Snapshot   // rank → snapshot before latest (for deltas)
	rankDrop map[int]int64          // rank → spans dropped at the source tracer
	entries  []obs.LogEntry         // merged event-log ring
	entStart int
	local    map[int]*obs.Registry // live local registries (BindLocal)
}

// NewMerger builds a merger whose merged timebase is zero at epoch,
// retaining at most cap merged spans (DefaultMergedCap when cap <= 0).
func NewMerger(epoch time.Time, cap int) *Merger {
	if cap <= 0 {
		cap = DefaultMergedCap
	}
	return &Merger{
		epoch:    epoch,
		cap:      cap,
		offsets:  map[int]time.Duration{},
		latest:   map[int]obs.Snapshot{},
		prev:     map[int]obs.Snapshot{},
		rankDrop: map[int]int64{},
		local:    map[int]*obs.Registry{},
	}
}

// SetOffset records rank's measured clock offset (worker clock minus
// master clock, from SyncClocks); nil-safe. Ranks without an offset
// ingest with offset zero — correct for the master's own bundle and for
// in-process fabrics sharing one clock.
func (m *Merger) SetOffset(rank int, offset time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.offsets[rank] = offset
	m.mu.Unlock()
}

// Offset returns rank's recorded clock offset; nil-safe.
func (m *Merger) Offset(rank int) time.Duration {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.offsets[rank]
}

// BindLocal attaches a live registry for rank: Snapshots (and therefore
// /metrics) re-snapshot it at read time instead of waiting for the next
// ingested bundle; nil-safe.
func (m *Merger) BindLocal(rank int, r *obs.Registry) {
	if m == nil || r == nil {
		return
	}
	m.mu.Lock()
	m.local[rank] = r
	m.mu.Unlock()
}

// appendEventLocked pushes one merged span, overwriting the oldest at
// capacity; callers hold mu.
func (m *Merger) appendEventLocked(ev obs.Event) {
	if len(m.events) < m.cap {
		m.events = append(m.events, ev)
		return
	}
	m.events[m.start] = ev
	m.start = (m.start + 1) % m.cap
	m.dropped++
}

// appendEntryLocked pushes one merged log entry, ring-capped at
// DefaultEntryCap; callers hold mu.
func (m *Merger) appendEntryLocked(e obs.LogEntry) {
	if len(m.entries) < DefaultEntryCap {
		m.entries = append(m.entries, e)
		return
	}
	m.entries[m.entStart] = e
	m.entStart = (m.entStart + 1) % DefaultEntryCap
}

// Ingest merges one shipped bundle: spans are rebased from the
// shipper's epoch onto the master timebase using the rank's clock
// offset, the rank's metrics snapshot replaces the previous one (which
// is kept for flight-recorder deltas), and event-log lines join the
// merged log with their timestamps corrected onto the master clock;
// nil-safe.
func (m *Merger) Ingest(b WorkerBundle) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	off := m.offsets[b.Rank]
	// A worker timestamp t_w corresponds to master wall time t_w − off;
	// span starts become (workerEpoch + Start − off) − masterEpoch.
	rebase := b.Epoch.Sub(m.epoch) - off
	for _, ev := range b.Spans {
		ev.Start += rebase
		m.appendEventLocked(ev)
	}
	if b.Dropped > 0 {
		m.rankDrop[b.Rank] += b.Dropped
	}
	if prev, ok := m.latest[b.Rank]; ok {
		m.prev[b.Rank] = prev
	}
	m.latest[b.Rank] = b.Metrics
	for _, e := range b.Events {
		e.Time = e.Time.Add(-off)
		m.appendEntryLocked(e)
	}
}

// Events returns the merged spans sorted by start time. When clock
// skew pushes any span before the timebase zero, the whole timeline is
// shifted so the earliest span starts at zero — viewers get no
// negative-start spans; nil-safe.
func (m *Merger) Events() []obs.Event {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	out := make([]obs.Event, 0, len(m.events))
	out = append(out, m.events[m.start:]...)
	out = append(out, m.events[:m.start]...)
	m.mu.Unlock()
	obs.SortEvents(out)
	if len(out) > 0 && out[0].Start < 0 {
		shift := -out[0].Start
		for i := range out {
			out[i].Start += shift
		}
	}
	return out
}

// WriteChromeTrace writes the merged timeline as Chrome trace-event
// JSON with one process track per rank; nil-safe (empty trace).
func (m *Merger) WriteChromeTrace(w io.Writer) error {
	return obs.WriteChromeEvents(w, m.Events())
}

// Ranks returns the ranks that have shipped at least one bundle (or are
// locally bound), ascending; nil-safe.
func (m *Merger) Ranks() []int {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	seen := map[int]bool{}
	for r := range m.latest {
		seen[r] = true
	}
	for r := range m.local {
		seen[r] = true
	}
	m.mu.Unlock()
	ranks := make([]int, 0, len(seen))
	for r := range seen {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	return ranks
}

// Snapshots returns the newest metrics snapshot per rank. Ranks bound
// with BindLocal are re-snapshot live at call time; shipped ranks
// return their last ingested snapshot; nil-safe.
func (m *Merger) Snapshots() map[int]obs.Snapshot {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	out := make(map[int]obs.Snapshot, len(m.latest))
	for r, s := range m.latest {
		out[r] = s
	}
	live := make(map[int]*obs.Registry, len(m.local))
	for r, reg := range m.local {
		live[r] = reg
	}
	m.mu.Unlock()
	// Snapshot live registries outside the merger lock: Registry has its
	// own lock and scrapes must not block ingestion.
	for r, reg := range live {
		out[r] = reg.Snapshot()
	}
	return out
}

// Entries returns the merged event-log lines sorted by (master-clock)
// time; nil-safe.
func (m *Merger) Entries() []obs.LogEntry {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	out := make([]obs.LogEntry, 0, len(m.entries))
	out = append(out, m.entries[m.entStart:]...)
	out = append(out, m.entries[:m.entStart]...)
	m.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}

// RankDelta is one rank's metric movement between its last two shipped
// snapshots — what the flight recorder reports as "what was this rank
// doing right before the fault".
type RankDelta struct {
	// Rank is the reporting rank.
	Rank int `json:"rank"`
	// Counters holds counter increments since the previous snapshot.
	Counters []obs.CounterSnap `json:"counters,omitempty"`
	// Gauges holds the latest gauge values.
	Gauges []obs.GaugeSnap `json:"gauges,omitempty"`
}

// Deltas computes every shipped rank's counter movement between its two
// most recent snapshots (the full latest value when only one snapshot
// has arrived) plus its latest gauges, sorted by rank; nil-safe.
func (m *Merger) Deltas() []RankDelta {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ranks := make([]int, 0, len(m.latest))
	for r := range m.latest {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	out := make([]RankDelta, 0, len(ranks))
	for _, r := range ranks {
		cur, was := m.latest[r], m.prev[r]
		prevVal := map[string]int64{}
		for _, c := range was.Counters {
			prevVal[c.Name] = c.Value
		}
		d := RankDelta{Rank: r, Gauges: cur.Gauges}
		for _, c := range cur.Counters {
			if delta := c.Value - prevVal[c.Name]; delta != 0 {
				d.Counters = append(d.Counters, obs.CounterSnap{Name: c.Name, Value: delta})
			}
		}
		out = append(out, d)
	}
	return out
}

// Dropped returns spans lost to the merged ring plus spans dropped at
// the source tracers, as (merged, perRank); nil-safe.
func (m *Merger) Dropped() (merged int64, perRank map[int]int64) {
	if m == nil {
		return 0, nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	perRank = make(map[int]int64, len(m.rankDrop))
	for r, n := range m.rankDrop {
		perRank[r] = n
	}
	return m.dropped, perRank
}

// Epoch returns the merged timebase's zero point; nil-safe.
func (m *Merger) Epoch() time.Time {
	if m == nil {
		return time.Time{}
	}
	return m.epoch
}
