package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/obs"
)

// promName sanitizes a registry metric name into a Prometheus metric
// name: the "hf_" namespace prefix plus the name with every character
// outside [a-zA-Z0-9_] replaced by '_' (dots become underscores, so
// "mpi.allreduce.ns" → "hf_mpi_allreduce_ns").
func promName(name string) string {
	var sb strings.Builder
	sb.WriteString("hf_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// WritePrometheus renders per-rank registry snapshots in the Prometheus
// text exposition format (version 0.0.4): each metric appears once with
// its # TYPE line followed by one sample per rank carrying a rank
// label; histograms expand to cumulative _bucket series plus _sum and
// _count. Output is fully deterministic (names and ranks sorted), which
// the golden test locks down.
func WritePrometheus(w io.Writer, snaps map[int]obs.Snapshot) error {
	ranks := make([]int, 0, len(snaps))
	for r := range snaps {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)

	counters := map[string]map[int]int64{}
	gauges := map[string]map[int]float64{}
	hists := map[string]map[int]obs.HistSnap{}
	for _, rank := range ranks {
		s := snaps[rank]
		for _, c := range s.Counters {
			if counters[c.Name] == nil {
				counters[c.Name] = map[int]int64{}
			}
			counters[c.Name][rank] = c.Value
		}
		for _, g := range s.Gauges {
			if gauges[g.Name] == nil {
				gauges[g.Name] = map[int]float64{}
			}
			gauges[g.Name][rank] = g.Value
		}
		for _, h := range s.Histograms {
			if hists[h.Name] == nil {
				hists[h.Name] = map[int]obs.HistSnap{}
			}
			hists[h.Name][rank] = h
		}
	}

	emit := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	for _, name := range sortedNames(counters) {
		pn := promName(name)
		if err := emit("# TYPE %s counter\n", pn); err != nil {
			return err
		}
		for _, rank := range ranks {
			if v, ok := counters[name][rank]; ok {
				if err := emit("%s{rank=\"%d\"} %d\n", pn, rank, v); err != nil {
					return err
				}
			}
		}
	}
	for _, name := range sortedNames(gauges) {
		pn := promName(name)
		if err := emit("# TYPE %s gauge\n", pn); err != nil {
			return err
		}
		for _, rank := range ranks {
			if v, ok := gauges[name][rank]; ok {
				if err := emit("%s{rank=\"%d\"} %s\n", pn, rank, formatFloat(v)); err != nil {
					return err
				}
			}
		}
	}
	for _, name := range sortedNames(hists) {
		pn := promName(name)
		if err := emit("# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		for _, rank := range ranks {
			h, ok := hists[name][rank]
			if !ok {
				continue
			}
			var cum int64
			for _, b := range h.Buckets {
				cum += b.Count
				if err := emit("%s_bucket{rank=\"%d\",le=\"%d\"} %d\n", pn, rank, b.Le, cum); err != nil {
					return err
				}
			}
			if err := emit("%s_bucket{rank=\"%d\",le=\"+Inf\"} %d\n", pn, rank, h.Count); err != nil {
				return err
			}
			if err := emit("%s_sum{rank=\"%d\"} %d\n", pn, rank, h.Sum); err != nil {
				return err
			}
			if err := emit("%s_count{rank=\"%d\"} %d\n", pn, rank, h.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatFloat renders a gauge value the Prometheus way: integral values
// without a decimal point, everything else in shortest-round-trip form.
func formatFloat(v float64) string {
	//lint:ignore floateq exact integrality test chooses the rendering, not a numeric tolerance
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// sortedNames returns m's keys sorted.
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WritePrometheus renders the merger's newest per-rank snapshots (live
// registries re-snapshot at call time) in Prometheus text format, plus
// the plane's own meta-series: hf_telemetry_ranks (ranks reporting) and
// hf_telemetry_dropped_spans_total (spans lost to ring overwrites
// anywhere in the pipeline); nil-safe (writes only the meta-series
// zeros).
func (m *Merger) WritePrometheus(w io.Writer) error {
	if err := WritePrometheus(w, m.Snapshots()); err != nil {
		return err
	}
	merged, perRank := m.Dropped()
	var dropped int64 = merged
	for _, n := range perRank {
		dropped += n
	}
	if _, err := fmt.Fprintf(w, "# TYPE hf_telemetry_ranks gauge\nhf_telemetry_ranks %d\n", len(m.Ranks())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "# TYPE hf_telemetry_dropped_spans_total counter\nhf_telemetry_dropped_spans_total %d\n", dropped)
	return err
}
