package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// FlightBundle is the flight recorder's post-mortem artifact: the last
// window of merged spans and event-log lines plus every rank's metric
// movement, frozen at the moment of a fault. It is attached to the
// run's FaultReport and rendered by report.FaultTable.
type FlightBundle struct {
	// Reason names the trigger: "eviction rank 2", "watchdog",
	// "surrender", "master error: ...".
	Reason string `json:"reason"`
	// CapturedAt is the master wall-clock capture time.
	CapturedAt time.Time `json:"captured_at"`
	// Window is the lookback the spans/events were filtered with.
	Window time.Duration `json:"window_ns"`
	// Ranks lists every rank with data in the bundle.
	Ranks []int `json:"ranks"`
	// Spans are the merged-timebase spans whose intervals end inside
	// the window (so pre-eviction spans from a dead rank survive).
	Spans []obs.Event `json:"spans"`
	// Events are the merged event-log lines inside the window.
	Events []obs.LogEntry `json:"events"`
	// Deltas is each rank's metric movement between its last two
	// shipped snapshots.
	Deltas []RankDelta `json:"metric_deltas"`
	// DroppedSpans counts spans lost to ring overwrites anywhere in the
	// pipeline — a non-zero value flags an incomplete picture.
	DroppedSpans int64 `json:"dropped_spans"`
}

// WriteJSON writes the bundle as indented JSON; nil-safe (writes null).
func (b *FlightBundle) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// Recorder is the fault flight recorder: Capture freezes the merger's
// recent state into a FlightBundle when something goes wrong. The nil
// Recorder is a valid no-op (Capture returns nil).
type Recorder struct {
	window time.Duration

	mu   sync.Mutex
	last *FlightBundle
}

// NewRecorder builds a recorder with the given lookback window
// (DefaultWindow when w <= 0).
func NewRecorder(w time.Duration) *Recorder {
	if w <= 0 {
		w = DefaultWindow
	}
	return &Recorder{window: w}
}

// Window returns the recorder's lookback; nil-safe.
func (r *Recorder) Window() time.Duration {
	if r == nil {
		return 0
	}
	return r.window
}

// Capture freezes the merger's last window into a FlightBundle tagged
// with reason, stores it as Last, and returns it; nil-safe (returns
// nil when either receiver or merger is nil). The span filter keeps
// every span whose interval ends inside the window measured back from
// the newest merged span — so a rank evicted moments ago contributes
// the spans it shipped before dying.
func (r *Recorder) Capture(m *Merger, reason string) *FlightBundle {
	if r == nil || m == nil {
		return nil
	}
	all := m.Events()
	var latest time.Duration
	for _, ev := range all {
		if end := ev.Start + ev.Dur; end > latest {
			latest = end
		}
	}
	cutoff := latest - r.window
	b := &FlightBundle{
		Reason:     reason,
		CapturedAt: time.Now(),
		Window:     r.window,
		Deltas:     m.Deltas(),
	}
	seen := map[int]bool{}
	for _, ev := range all {
		if ev.Start+ev.Dur >= cutoff {
			b.Spans = append(b.Spans, ev)
			seen[ev.Rank] = true
		}
	}
	wallCutoff := m.Epoch().Add(cutoff)
	for _, e := range m.Entries() {
		if !e.Time.Before(wallCutoff) {
			b.Events = append(b.Events, e)
			if e.Rank >= 0 {
				seen[e.Rank] = true
			}
		}
	}
	for _, d := range b.Deltas {
		seen[d.Rank] = true
	}
	for rank := range seen {
		b.Ranks = append(b.Ranks, rank)
	}
	sort.Ints(b.Ranks)
	merged, perRank := m.Dropped()
	b.DroppedSpans = merged
	for _, n := range perRank {
		b.DroppedSpans += n
	}
	r.mu.Lock()
	r.last = b
	r.mu.Unlock()
	return b
}

// Last returns the most recent captured bundle, or nil; nil-safe.
func (r *Recorder) Last() *FlightBundle {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.last
}
