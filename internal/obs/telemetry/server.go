package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the live monitoring endpoint behind hftrain -http. It
// serves, from the master's telemetry plane:
//
//	/metrics        Prometheus text exposition of all ranks' metrics
//	/trace          the merged Chrome/Perfetto trace so far (download)
//	/healthz        run/worker state as JSON; 503 when degraded
//	/flight         the most recent flight-recorder bundle, if any
//	/debug/pprof/   the standard Go profiler endpoints
//
// Handlers only read the plane's concurrency-safe components, so
// scraping never blocks training.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{} // closed when the serve goroutine has returned
}

// NewServer starts the monitoring endpoint on addr (e.g. ":9090" or
// "127.0.0.1:0"; a port of 0 picks a free one — read it back with
// Addr). The plane may be nil: every endpoint then serves its empty
// form, which keeps -http usable for pprof alone.
func NewServer(addr string, p *Plane) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = p.Merger().WritePrometheus(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
		_ = p.Merger().WriteChromeTrace(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if !p.Health().Healthy() {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = p.Health().WriteJSON(w)
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		b := p.Recorder().Last()
		if b == nil {
			w.WriteHeader(http.StatusNotFound)
		}
		_ = b.WriteJSON(w)
	})
	// net/http/pprof self-registers only on http.DefaultServeMux; wire
	// its handlers onto this private mux explicitly.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{
		ln:   ln,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		done: make(chan struct{}),
	}
	go func() {
		// ErrServerClosed after Close; anything else means the listener
		// died, which monitoring tolerates silently (training goes on).
		_ = s.srv.Serve(ln)
		close(s.done)
	}()
	return s, nil
}

// Addr returns the bound listen address (host:port); nil-safe.
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the endpoint down and joins the serve goroutine, so a
// returned Close guarantees no goroutine of this Server remains;
// nil-safe.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	err := s.srv.Close()
	<-s.done
	return err
}
