// Package telemetry is the distributed half of the observability layer:
// it moves per-rank spans, metrics and event-log lines to the master and
// turns them into one clock-aligned timeline, a live monitoring
// endpoint, and a post-mortem flight recorder.
//
// Three pillars:
//
//   - cross-rank trace aggregation: an RTT ping/pong clock-offset
//     handshake at session start (SyncClocks/ServeClockSync on
//     mpi.TagClockSync), workers shipping span/metric/event bundles to
//     the master on mpi.TagTelemetry at iteration boundaries — off the
//     collective critical path — and a master-side Merger emitting one
//     Chrome/Perfetto trace with per-rank process tracks on a common
//     timebase;
//   - a live monitoring endpoint (Server): Prometheus text exposition at
//     /metrics, the merged trace so far at /trace, elastic worker state
//     at /healthz, and net/http/pprof;
//   - a fault flight recorder (Recorder): on eviction, watchdog trip or
//     surrender, the last window of spans, event-log lines and metric
//     deltas from every reachable rank is frozen into a FlightBundle
//     attached to the run's FaultReport.
//
// Like package obs, everything is nil-safe: a nil *Plane, *Merger,
// *Recorder, *Shipper or *Health turns every method into a no-op, so
// the runtime threads one pointer around and pays nothing when the
// plane is disabled. The obsnilguard analyzer enforces that code
// outside the obs tree reaches Plane components through the nil-safe
// accessors rather than the struct fields.
package telemetry

import (
	"bytes"
	"encoding/gob"
	"time"

	"repro/internal/mpi"
	"repro/internal/obs"
)

// Defaults for Config.Filled.
const (
	// DefaultFlushEvery ships telemetry every iteration; raise it to
	// amortize shipping on fast iterations.
	DefaultFlushEvery = 1
	// DefaultWindow is the flight recorder's lookback.
	DefaultWindow = 10 * time.Second
	// DefaultMergedCap bounds the master's merged span ring.
	DefaultMergedCap = 1 << 19
	// DefaultEntryCap bounds the master's merged event-log ring.
	DefaultEntryCap = 1024
	// DefaultDeadline bounds each per-worker telemetry receive.
	DefaultDeadline = 5 * time.Second
	// DefaultClockSyncRounds is the number of RTT ping/pong rounds per
	// worker; the round with the smallest RTT wins.
	DefaultClockSyncRounds = 4
)

// Config tunes the telemetry plane. The zero value means "defaults";
// call Filled to materialize them.
type Config struct {
	// FlushEvery ships worker bundles every FlushEvery iterations.
	FlushEvery int
	// Window is the flight recorder's lookback.
	Window time.Duration
	// MergedCap bounds the merged span ring on the master.
	MergedCap int
	// Deadline bounds each per-worker telemetry receive on the master.
	Deadline time.Duration
	// ClockSyncRounds is the number of clock-offset ping rounds.
	ClockSyncRounds int
}

// Filled returns cfg with zero fields replaced by defaults.
func (cfg Config) Filled() Config {
	if cfg.FlushEvery <= 0 {
		cfg.FlushEvery = DefaultFlushEvery
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.MergedCap <= 0 {
		cfg.MergedCap = DefaultMergedCap
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = DefaultDeadline
	}
	if cfg.ClockSyncRounds <= 0 {
		cfg.ClockSyncRounds = DefaultClockSyncRounds
	}
	return cfg
}

// Plane bundles the master-side telemetry components the runtime
// threads through a session. The nil Plane is a valid, disabled plane.
type Plane struct {
	// Traces merges shipped span bundles onto one timebase; reach it
	// through Merger outside the obs tree.
	Traces *Merger
	// Flight captures post-mortem bundles; reach it through Recorder.
	Flight *Recorder
	// Status is the live state surfaced at /healthz; reach it through
	// Health.
	Status *Health

	cfg Config
}

// NewPlane builds a telemetry plane whose merged timebase is zero at
// epoch (pass the master tracer's Epoch so local spans need no rebase).
func NewPlane(cfg Config, epoch time.Time) *Plane {
	cfg = cfg.Filled()
	return &Plane{
		Traces: NewMerger(epoch, cfg.MergedCap),
		Flight: NewRecorder(cfg.Window),
		Status: NewHealth(),
		cfg:    cfg,
	}
}

// Merger returns the trace/metric merger, or nil when the plane is
// disabled; nil-safe.
func (p *Plane) Merger() *Merger {
	if p == nil {
		return nil
	}
	return p.Traces
}

// Recorder returns the fault flight recorder, or nil; nil-safe.
func (p *Plane) Recorder() *Recorder {
	if p == nil {
		return nil
	}
	return p.Flight
}

// Health returns the live status tracker, or nil; nil-safe.
func (p *Plane) Health() *Health {
	if p == nil {
		return nil
	}
	return p.Status
}

// Config returns the plane's filled configuration; nil-safe (returns
// the filled zero Config).
func (p *Plane) Config() Config {
	if p == nil {
		return Config{}.Filled()
	}
	return p.cfg
}

// WorkerBundle is one telemetry shipment: everything a rank drained
// since its previous flush. It crosses the wire gob-encoded on
// mpi.TagTelemetry.
type WorkerBundle struct {
	// Rank is the shipping rank.
	Rank int
	// Epoch is the shipper tracer's trace-time zero on the shipper's
	// own wall clock; the merger rebases Spans with the rank's measured
	// clock offset.
	Epoch time.Time
	// Spans are the drained spans, Start relative to Epoch.
	Spans []obs.Event
	// Dropped counts spans the rank's tracer ring overwrote since the
	// previous flush.
	Dropped int64
	// Metrics is a full registry snapshot (cumulative, not a delta).
	Metrics obs.Snapshot
	// Events are the event-log lines appended since the previous flush,
	// stamped with the shipper's wall clock.
	Events []obs.LogEntry
}

// Shipper is the worker-side half of the plane: it drains a rank's
// Observer into WorkerBundles. The nil Shipper encodes empty bundles.
type Shipper struct {
	rank      int
	ob        *obs.Observer
	logCursor int64
}

// NewShipper wraps rank's observer for telemetry shipping.
func NewShipper(rank int, ob *obs.Observer) *Shipper {
	return &Shipper{rank: rank, ob: ob}
}

// Bundle drains the observer into a WorkerBundle: spans recorded and
// event-log lines appended since the previous Bundle, plus a cumulative
// metrics snapshot; nil-safe (returns an empty bundle).
func (s *Shipper) Bundle() WorkerBundle {
	if s == nil {
		return WorkerBundle{Rank: -1}
	}
	b := WorkerBundle{Rank: s.rank, Epoch: s.ob.Tracer().Epoch()}
	b.Spans, b.Dropped = s.ob.Tracer().Drain()
	b.Metrics = s.ob.Registry().Snapshot()
	b.Events, s.logCursor = s.ob.EventLog().EntriesSince(s.logCursor)
	return b
}

// Encode drains the observer (see Bundle) and gob-encodes the result
// for the wire; nil-safe.
func (s *Shipper) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s.Bundle()); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Ship drains the observer and sends the encoded bundle to dst on
// mpi.TagTelemetry; nil-safe (a nil Shipper still sends an empty
// bundle, keeping the master's per-worker receive matched).
func (s *Shipper) Ship(c *mpi.Comm, dst int) error {
	payload, err := s.Encode()
	if err != nil {
		return err
	}
	return c.SendBytes(dst, mpi.TagTelemetry, payload)
}

// DecodeBundle decodes one wire shipment.
func DecodeBundle(data []byte) (WorkerBundle, error) {
	var b WorkerBundle
	err := gob.NewDecoder(bytes.NewReader(data)).Decode(&b)
	return b, err
}
