package telemetry

import (
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/obs"
)

func TestConfigFilled(t *testing.T) {
	cfg := Config{}.Filled()
	if cfg.FlushEvery != DefaultFlushEvery || cfg.Window != DefaultWindow ||
		cfg.MergedCap != DefaultMergedCap || cfg.Deadline != DefaultDeadline ||
		cfg.ClockSyncRounds != DefaultClockSyncRounds {
		t.Fatalf("defaults not filled: %+v", cfg)
	}
	cfg = Config{FlushEvery: 3, Window: time.Second}.Filled()
	if cfg.FlushEvery != 3 || cfg.Window != time.Second {
		t.Fatalf("explicit fields clobbered: %+v", cfg)
	}
}

// TestNilPlaneIsNoop proves the whole plane is nil-safe: every accessor
// and component method on a nil receiver is a working no-op.
func TestNilPlaneIsNoop(t *testing.T) {
	var p *Plane
	if p.Merger() != nil || p.Recorder() != nil || p.Health() != nil {
		t.Fatal("nil plane handed out non-nil components")
	}
	var m *Merger
	m.SetOffset(1, time.Second)
	m.Ingest(WorkerBundle{Rank: 1})
	if m.Events() != nil || m.Ranks() != nil || m.Snapshots() != nil {
		t.Fatal("nil merger returned data")
	}
	if err := m.WriteChromeTrace(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if err := m.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var r *Recorder
	if r.Capture(nil, "x") != nil || r.Last() != nil {
		t.Fatal("nil recorder captured")
	}
	var h *Health
	h.SetState("training")
	h.SetWorker(1, WorkerEvicted)
	h.SetProgress(5, 0.5)
	if !h.Healthy() {
		t.Fatal("nil health not healthy")
	}
	if err := h.WriteJSON(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var s *Shipper
	if b := s.Bundle(); len(b.Spans) != 0 {
		t.Fatal("nil shipper produced spans")
	}
	var srv *Server
	if srv.Addr() != "" || srv.Close() != nil {
		t.Fatal("nil server misbehaved")
	}
}

// TestClockSyncRoundTrip runs the handshake over the in-process fabric
// (both endpoints share one physical clock, so the estimated offset
// must be small) and proves master and worker agree on round count.
func TestClockSyncRoundTrip(t *testing.T) {
	fab := mpi.NewInprocFabric(2)
	defer fab.Close()
	master := mpi.NewComm(fab.Transport(0))
	worker := mpi.NewComm(fab.Transport(1))
	done := make(chan error, 1)
	go func() { done <- ServeClockSync(worker, 0, 4) }()
	offset, rtt, err := SyncClocks(master, 1, 4, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if rtt <= 0 || rtt > time.Second {
		t.Fatalf("rtt = %v", rtt)
	}
	if offset < -50*time.Millisecond || offset > 50*time.Millisecond {
		t.Fatalf("same-clock offset = %v, want ~0", offset)
	}
}

// TestShipperMergerRoundTrip ships a worker bundle over the fabric and
// checks the merger rebases spans onto the master timebase, applies the
// clock offset, and keeps metrics and events.
func TestShipperMergerRoundTrip(t *testing.T) {
	fab := mpi.NewInprocFabric(2)
	defer fab.Close()
	master := mpi.NewComm(fab.Transport(0))
	worker := mpi.NewComm(fab.Transport(1))

	wOb := &obs.Observer{
		Metrics: obs.NewRegistry(),
		Trace:   obs.NewTracer(),
		Events:  obs.NewEventLog(0),
	}
	wOb.Registry().Counter("iter.count").Add(7)
	wOb.Span(1, "gradient_loss").End()
	wOb.Eventf(1, "hello from worker")

	ship := NewShipper(1, wOb)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := ship.Ship(worker, 0); err != nil {
			t.Error(err)
		}
	}()

	msg, err := master.RecvBytesTimeout(1, mpi.TagTelemetry, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	b, err := DecodeBundle(msg.Data)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rank != 1 || len(b.Spans) != 1 || len(b.Events) != 1 {
		t.Fatalf("bundle = %+v", b)
	}

	m := NewMerger(wOb.Tracer().Epoch().Add(-time.Second), 0)
	m.SetOffset(1, 0)
	m.Ingest(b)
	evs := m.Events()
	if len(evs) != 1 || evs[0].Name != "gradient_loss" || evs[0].Rank != 1 {
		t.Fatalf("merged events = %+v", evs)
	}
	// Worker epoch is 1s after the merger timebase zero, so the span
	// must land at >= 1s on the merged timeline.
	if evs[0].Start < time.Second {
		t.Fatalf("span not rebased: start %v", evs[0].Start)
	}
	snaps := m.Snapshots()
	if snaps[1].Counters[0].Value != 7 {
		t.Fatalf("snapshot lost: %+v", snaps)
	}
	if entries := m.Entries(); len(entries) != 1 || entries[0].Text != "hello from worker" {
		t.Fatalf("entries = %+v", entries)
	}

	// A second flush after more activity ships only the new spans, and
	// Deltas reports the counter movement between the two snapshots.
	wOb.Registry().Counter("iter.count").Add(3)
	wOb.Span(1, "sync_weights").End()
	m.Ingest(ship.Bundle())
	if evs := m.Events(); len(evs) != 2 {
		t.Fatalf("merged %d events after second flush, want 2", len(evs))
	}
	ds := m.Deltas()
	if len(ds) != 1 || len(ds[0].Counters) != 1 || ds[0].Counters[0].Value != 3 {
		t.Fatalf("deltas = %+v", ds)
	}
}

// TestMergerClockOffsetNoNegativeStarts feeds a bundle whose rank clock
// runs far ahead (positive offset) and one far behind, and checks the
// merged timeline is shifted so nothing starts before zero.
func TestMergerClockOffsetNoNegativeStarts(t *testing.T) {
	epoch := time.Now()
	m := NewMerger(epoch, 0)
	m.SetOffset(1, 2*time.Second)  // rank 1 clock 2s ahead of master
	m.SetOffset(2, -2*time.Second) // rank 2 clock 2s behind
	for rank := 1; rank <= 2; rank++ {
		m.Ingest(WorkerBundle{
			Rank:  rank,
			Epoch: epoch, // same wall instant as master epoch on the worker's own (skewed) clock
			Spans: []obs.Event{{Name: "w", Rank: rank, Start: 0, Dur: time.Millisecond}},
		})
	}
	evs := m.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	for _, ev := range evs {
		if ev.Start < 0 {
			t.Fatalf("negative start after rebase: %+v", evs)
		}
	}
	// Relative spacing must be preserved: 4s between the two ranks.
	if gap := evs[1].Start - evs[0].Start; gap != 4*time.Second {
		t.Fatalf("relative spacing lost: gap %v, want 4s", gap)
	}
}

// TestMergerCapBounds proves the merged ring drops oldest at capacity
// and counts drops.
func TestMergerCapBounds(t *testing.T) {
	epoch := time.Now()
	m := NewMerger(epoch, 3)
	spans := make([]obs.Event, 5)
	for i := range spans {
		spans[i] = obs.Event{Name: "s", Rank: 1, Start: time.Duration(i), Dur: 1}
	}
	m.Ingest(WorkerBundle{Rank: 1, Epoch: epoch, Spans: spans, Dropped: 2})
	if got := len(m.Events()); got != 3 {
		t.Fatalf("retained %d, want 3", got)
	}
	merged, perRank := m.Dropped()
	if merged != 2 || perRank[1] != 2 {
		t.Fatalf("dropped = %d, %v", merged, perRank)
	}
}

// TestPrometheusGolden locks the text exposition format byte-for-byte.
func TestPrometheusGolden(t *testing.T) {
	snaps := map[int]obs.Snapshot{
		1: {
			Counters: []obs.CounterSnap{{Name: "iter.count", Value: 3}},
			Gauges:   []obs.GaugeSnap{{Name: "loss", Value: 0.5}},
			Histograms: []obs.HistSnap{{
				Name: "mpi.allreduce.ns", Count: 3, Sum: 9,
				Buckets: []obs.BucketSnap{{Le: 1, Count: 1}, {Le: 7, Count: 2}},
			}},
		},
		0: {
			Counters: []obs.CounterSnap{{Name: "iter.count", Value: 4}},
			Gauges:   []obs.GaugeSnap{{Name: "loss", Value: 2}},
		},
	}
	var sb strings.Builder
	if err := WritePrometheus(&sb, snaps); err != nil {
		t.Fatal(err)
	}
	const golden = `# TYPE hf_iter_count counter
hf_iter_count{rank="0"} 4
hf_iter_count{rank="1"} 3
# TYPE hf_loss gauge
hf_loss{rank="0"} 2
hf_loss{rank="1"} 0.5
# TYPE hf_mpi_allreduce_ns histogram
hf_mpi_allreduce_ns_bucket{rank="1",le="1"} 1
hf_mpi_allreduce_ns_bucket{rank="1",le="7"} 3
hf_mpi_allreduce_ns_bucket{rank="1",le="+Inf"} 3
hf_mpi_allreduce_ns_sum{rank="1"} 9
hf_mpi_allreduce_ns_count{rank="1"} 3
`
	if sb.String() != golden {
		t.Fatalf("prometheus text mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), golden)
	}
}

// TestMergedTraceGolden locks the merged Chrome trace output for two
// ranks with a known offset — the cross-rank version of the obs golden.
func TestMergedTraceGolden(t *testing.T) {
	epoch := time.Unix(1000, 0)
	m := NewMerger(epoch, 0)
	m.SetOffset(1, time.Millisecond) // rank 1's clock runs 1ms ahead
	m.Ingest(WorkerBundle{Rank: 0, Epoch: epoch, Spans: []obs.Event{
		{Name: "cg_minimize", Rank: 0, Start: 0, Dur: 2 * time.Millisecond},
	}})
	m.Ingest(WorkerBundle{Rank: 1, Epoch: epoch.Add(2 * time.Millisecond), Spans: []obs.Event{
		// Worker-local start 0 at worker epoch = master wall epoch+1ms
		// → merged start 1ms once the 1ms clock skew is removed.
		{Name: "gradient_loss", Rank: 1, Start: 0, Dur: time.Millisecond},
	}})
	var sb strings.Builder
	if err := m.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	const golden = `{
 "traceEvents": [
  {
   "name": "process_name",
   "ph": "M",
   "pid": 0,
   "tid": 0,
   "ts": 0,
   "args": {
    "name": "rank 0 (master)"
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "pid": 0,
   "tid": 0,
   "ts": 0,
   "args": {
    "name": "lane 0"
   }
  },
  {
   "name": "cg_minimize",
   "ph": "X",
   "pid": 0,
   "tid": 0,
   "ts": 0,
   "dur": 2000
  },
  {
   "name": "process_name",
   "ph": "M",
   "pid": 1,
   "tid": 0,
   "ts": 0,
   "args": {
    "name": "rank 1"
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "pid": 1,
   "tid": 0,
   "ts": 0,
   "args": {
    "name": "lane 0"
   }
  },
  {
   "name": "gradient_loss",
   "ph": "X",
   "pid": 1,
   "tid": 0,
   "ts": 1000,
   "dur": 1000
  }
 ],
 "displayTimeUnit": "ms"
}
`
	if sb.String() != golden {
		t.Fatalf("merged trace mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), golden)
	}
}

// TestRecorderCapture proves a flight bundle keeps a dead rank's
// pre-fault spans, events, and metric deltas.
func TestRecorderCapture(t *testing.T) {
	epoch := time.Now().Add(-time.Minute)
	m := NewMerger(epoch, 0)
	m.Ingest(WorkerBundle{
		Rank: 2, Epoch: epoch,
		Spans:   []obs.Event{{Name: "doomed_span", Rank: 2, Start: time.Second, Dur: time.Millisecond}},
		Metrics: obs.Snapshot{Counters: []obs.CounterSnap{{Name: "iter.count", Value: 5}}},
		Events:  []obs.LogEntry{{Time: epoch.Add(time.Second), Rank: 2, Text: "about to die"}},
	})
	r := NewRecorder(time.Hour) // wide window: keep everything
	b := r.Capture(m, "eviction rank 2")
	if b == nil {
		t.Fatal("no bundle")
	}
	if b.Reason != "eviction rank 2" || len(b.Spans) != 1 || b.Spans[0].Name != "doomed_span" {
		t.Fatalf("bundle = %+v", b)
	}
	if len(b.Events) != 1 || b.Events[0].Text != "about to die" {
		t.Fatalf("events = %+v", b.Events)
	}
	if len(b.Deltas) != 1 || b.Deltas[0].Rank != 2 || b.Deltas[0].Counters[0].Value != 5 {
		t.Fatalf("deltas = %+v", b.Deltas)
	}
	if len(b.Ranks) != 1 || b.Ranks[0] != 2 {
		t.Fatalf("ranks = %v", b.Ranks)
	}
	if r.Last() != b {
		t.Fatal("Last lost the bundle")
	}
	var sb strings.Builder
	if err := b.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "doomed_span") {
		t.Fatalf("JSON missing span: %s", sb.String())
	}

	// A narrow window drops old spans: re-ingest a much newer span and
	// capture with a tiny window — only the new span survives.
	m.Ingest(WorkerBundle{Rank: 3, Epoch: epoch, Spans: []obs.Event{
		{Name: "fresh", Rank: 3, Start: time.Hour, Dur: time.Millisecond},
	}})
	nb := NewRecorder(time.Second).Capture(m, "watchdog")
	if len(nb.Spans) != 1 || nb.Spans[0].Name != "fresh" {
		t.Fatalf("window filter failed: %+v", nb.Spans)
	}
}

// TestHealthJSON exercises state transitions and the healthy predicate.
func TestHealthJSON(t *testing.T) {
	h := NewHealth()
	h.SetState("training")
	h.SetWorker(1, WorkerLive)
	h.SetWorker(2, WorkerLive)
	h.SetProgress(12, 0.25)
	if !h.Healthy() {
		t.Fatal("live run reported unhealthy")
	}
	h.SetWorker(2, WorkerEvicted)
	h.SetWorker(2, WorkerEvicted) // idempotent: one eviction
	if h.Healthy() {
		t.Fatal("evicted worker not reflected")
	}
	var sb strings.Builder
	if err := h.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"state": "training"`, `"evictions": 1`, `"iter": 12`, `"2": "evicted"`, `"live": 1`} {
		if !strings.Contains(out, want) {
			t.Fatalf("healthz JSON missing %s:\n%s", want, out)
		}
	}
}

// TestServerEndpoints smoke-tests every route against a live plane.
func TestServerEndpoints(t *testing.T) {
	p := NewPlane(Config{}, time.Now())
	reg := obs.NewRegistry()
	reg.Counter("iter.count").Add(9)
	p.Merger().BindLocal(0, reg)
	p.Merger().Ingest(WorkerBundle{Rank: 1, Epoch: p.Merger().Epoch(), Spans: []obs.Event{
		{Name: "work", Rank: 1, Start: 0, Dur: time.Millisecond},
	}})
	p.Health().SetState("training")
	p.Health().SetWorker(1, WorkerLive)
	p.Recorder().Capture(p.Merger(), "smoke")

	srv, err := NewServer("127.0.0.1:0", p)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, `hf_iter_count{rank="0"} 9`) {
		t.Fatalf("/metrics %d:\n%s", code, body)
	}
	if code, body := get("/trace"); code != 200 || !strings.Contains(body, `"work"`) {
		t.Fatalf("/trace %d:\n%s", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, `"training"`) {
		t.Fatalf("/healthz %d:\n%s", code, body)
	}
	if code, body := get("/flight"); code != 200 || !strings.Contains(body, `"smoke"`) {
		t.Fatalf("/flight %d:\n%s", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline %d", code)
	}
	// Degraded run → 503 from /healthz.
	p.Health().SetWorker(1, WorkerEvicted)
	if code, _ := get("/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("degraded /healthz = %d, want 503", code)
	}
}

// TestServerCloseJoinsServeGoroutine is the regression test for the
// goroutineleak finding on the monitoring endpoint: Close must not just
// ask the http.Server to stop, it must wait for the serve goroutine to
// return, so a returned Close guarantees the Server left nothing
// running.
func TestServerCloseJoinsServeGoroutine(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	// A nil plane still serves pprof; touch the endpoint so the serve
	// loop has demonstrably started before we tear it down.
	resp, err := http.Get("http://" + srv.Addr() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return: serve goroutine never joined")
	}
	// The join contract: after Close returns, the serve goroutine has
	// already exited and signalled completion.
	select {
	case <-srv.done:
	default:
		t.Fatal("Close returned before the serve goroutine exited")
	}
}

// TestShipperBundleDrains is the regression test for shipper drain
// semantics: each Bundle call must hand off the spans and events
// accumulated since the previous call exactly once, so repeated flushes
// (and the elastic master's failure-path drain) never duplicate or drop
// telemetry.
func TestShipperBundleDrains(t *testing.T) {
	ob := &obs.Observer{
		Metrics: obs.NewRegistry(),
		Trace:   obs.NewTracer(),
		Events:  obs.NewEventLog(0),
	}
	ob.Span(0, "first").End()
	ob.Eventf(0, "one")
	ship := NewShipper(0, ob)

	b1 := ship.Bundle()
	if len(b1.Spans) != 1 || len(b1.Events) != 1 {
		t.Fatalf("first bundle = %d spans / %d events, want 1/1", len(b1.Spans), len(b1.Events))
	}

	// Nothing new happened: the next bundle must be empty, not a replay.
	b2 := ship.Bundle()
	if len(b2.Spans) != 0 || len(b2.Events) != 0 {
		t.Fatalf("second bundle not drained: %d spans / %d events", len(b2.Spans), len(b2.Events))
	}

	// New activity after the drain ships exactly once.
	ob.Span(0, "second").End()
	ob.Eventf(0, "two")
	b3 := ship.Bundle()
	if len(b3.Spans) != 1 || len(b3.Events) != 1 {
		t.Fatalf("post-drain bundle = %d spans / %d events, want 1/1", len(b3.Spans), len(b3.Events))
	}
	if b3.Spans[0].Name != "second" || b3.Events[0].Text != "two" {
		t.Fatalf("post-drain bundle replayed old telemetry: %+v", b3)
	}
}
