package obs

import (
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTracerRingCap proves the tracer's storage is bounded: past the
// configured capacity the oldest spans are overwritten and counted.
func TestTracerRingCap(t *testing.T) {
	tr := NewTracerSize(4)
	tr.now = fakeClock(tr.epoch, time.Millisecond)
	for i := 0; i < 10; i++ {
		tr.Begin(0, "work").End()
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	// The survivors must be the newest four (each span consumes two
	// clock ticks: Begin and End).
	if evs[0].Start != 12*time.Millisecond {
		t.Fatalf("oldest retained start = %v, want 12ms", evs[0].Start)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Start < evs[i-1].Start {
			t.Fatalf("ring snapshot out of order: %+v", evs)
		}
	}
}

// TestTracerDrain proves Drain hands each span to the caller exactly
// once and resets the drop counter — the contract the telemetry
// shipper's incremental flushes rely on.
func TestTracerDrain(t *testing.T) {
	tr := NewTracerSize(2)
	for i := 0; i < 3; i++ {
		tr.Begin(1, "a").End()
	}
	evs, dropped := tr.Drain()
	if len(evs) != 2 || dropped != 1 {
		t.Fatalf("drain = %d events, %d dropped; want 2, 1", len(evs), dropped)
	}
	if got := tr.Events(); len(got) != 0 {
		t.Fatalf("ring not cleared: %d events remain", len(got))
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped counter not reset: %d", tr.Dropped())
	}
	tr.Begin(1, "b").End()
	evs, dropped = tr.Drain()
	if len(evs) != 1 || evs[0].Name != "b" || dropped != 0 {
		t.Fatalf("second drain = %+v, %d dropped", evs, dropped)
	}
	// Nil tracer drains empty.
	var nilT *Tracer
	if evs, dropped := nilT.Drain(); evs != nil || dropped != 0 {
		t.Fatal("nil tracer drain not empty")
	}
}

// mkEvent builds an event for lane-assignment tests.
func mkEvent(rank int, name string, start, dur time.Duration) Event {
	return Event{Name: name, Rank: rank, Start: start, Dur: dur}
}

// TestAssignLanes checks the lane rules: nested spans share the parent's
// lane, genuinely concurrent (partially overlapping) spans get distinct
// lanes, and sequential spans reuse lane 0.
func TestAssignLanes(t *testing.T) {
	ms := time.Millisecond
	events := []Event{
		mkEvent(0, "outer", 0, 10*ms),   // lane 0
		mkEvent(0, "inner", 2*ms, 3*ms), // nested in outer → lane 0
		mkEvent(0, "overlap", 5*ms, 10*ms), // overlaps outer's tail → lane 1
		mkEvent(0, "later", 20*ms, ms),  // everything closed → lane 0
		mkEvent(1, "other", 0, ms),      // separate rank → its own lane 0
	}
	SortEvents(events)
	lanes := assignLanes(events)
	got := map[string]int{}
	for i, ev := range events {
		got[ev.Name] = lanes[i]
	}
	want := map[string]int{"outer": 0, "inner": 0, "overlap": 1, "later": 0, "other": 0}
	for name, lane := range want {
		if got[name] != lane {
			t.Errorf("%s on lane %d, want %d (all: %v)", name, got[name], lane, got)
		}
	}
}

// TestChromeTraceConcurrentLanes locks the satellite fix: concurrent
// spans within one rank must render on distinct tids with thread_name
// metadata, not collapse onto one track.
func TestChromeTraceConcurrentLanes(t *testing.T) {
	tr := NewTracer()
	tr.now = fakeClock(tr.epoch, time.Millisecond)
	a := tr.Begin(0, "cg_lane_a") // t=0
	b := tr.Begin(0, "cg_lane_b") // t=1, ends after a → partial overlap
	a.End()                       // t=2
	b.End()                       // t=3
	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"tid": 1`) {
		t.Fatalf("concurrent spans share one tid:\n%s", out)
	}
	if !strings.Contains(out, `"name": "lane 1"`) {
		t.Fatalf("missing thread_name metadata for lane 1:\n%s", out)
	}
}

// TestTracerSnapshotMidFlight hammers Begin/End from many goroutines
// while Events and WriteChromeTrace snapshot concurrently; with -race
// this proves readers never tear the ring.
func TestTracerSnapshotMidFlight(t *testing.T) {
	tr := NewTracerSize(512)
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for rk := 0; rk < 4; rk++ {
		writers.Add(1)
		go func(rk int) {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				sp := tr.Begin(rk, "work")
				sp.End()
			}
		}(rk)
	}
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = tr.Events()
				_ = tr.WriteChromeTrace(io.Discard)
				_, _ = tr.Drain()
			}
		}
	}()
	writers.Wait()
	close(stop)
	readers.Wait()
}

// TestEventLogSince checks the cursor API: Seq advances with appends and
// EntriesSince returns exactly the new tail, tolerating ring overwrite.
func TestEventLogSince(t *testing.T) {
	l := NewEventLog(4)
	if l.Seq() != 0 {
		t.Fatalf("fresh seq = %d", l.Seq())
	}
	l.Addf(0, "e%d", 1)
	l.Addf(0, "e%d", 2)
	got, cur := l.EntriesSince(0)
	if len(got) != 2 || cur != 2 || got[0].Text != "e1" {
		t.Fatalf("since(0) = %d entries, cur %d: %+v", len(got), cur, got)
	}
	l.Addf(1, "e3")
	got, cur = l.EntriesSince(cur)
	if len(got) != 1 || got[0].Text != "e3" || cur != 3 {
		t.Fatalf("incremental read wrong: %+v cur=%d", got, cur)
	}
	// No new entries → empty, same cursor.
	if got, cur2 := l.EntriesSince(cur); len(got) != 0 || cur2 != cur {
		t.Fatalf("idle read returned %d entries", len(got))
	}
	// Overflow the ring: entries beyond capacity are silently missing.
	for i := 4; i <= 10; i++ {
		l.Addf(0, "e%d", i)
	}
	got, cur = l.EntriesSince(cur)
	if len(got) != 4 || got[0].Text != "e7" || got[3].Text != "e10" || cur != 10 {
		t.Fatalf("overflow read = %+v cur=%d", got, cur)
	}
	// Nil log: always empty, cursor 0.
	var nilL *EventLog
	if got, cur := nilL.EntriesSince(5); got != nil || cur != 0 {
		t.Fatal("nil log EntriesSince not empty")
	}
}

// TestEventLogConcurrent appends from many goroutines while readers
// drain via Entries and EntriesSince; with -race this proves the log is
// safe for the telemetry plane's concurrent shipper + HTTP readers.
func TestEventLogConcurrent(t *testing.T) {
	l := NewEventLog(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				l.Addf(w, "msg %d", i)
			}
		}(w)
	}
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		var cursor int64
		for {
			select {
			case <-stop:
				return
			default:
				_ = l.Entries()
				_, cursor = l.EntriesSince(cursor)
				_ = l.Len()
			}
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()
	if l.Seq() != 4*300 {
		t.Fatalf("seq = %d, want %d", l.Seq(), 4*300)
	}
	if l.Len() != 64 {
		t.Fatalf("len = %d, want 64", l.Len())
	}
}
