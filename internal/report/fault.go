package report

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/obs/telemetry"
)

// FaultTable renders an elastic run's fault report: the eviction budget
// summary and one row per evicted worker (which operation exposed the
// fault, how far the run rewound, and the size of the re-sharded data).
// The companion latency distributions (rewind wall time, heartbeat RTTs)
// live in the metrics registry and render via MetricsTable.
func FaultTable(w io.Writer, rep *core.FaultReport) {
	if rep == nil {
		return
	}
	fmt.Fprintf(w, "elastic fault report: %d eviction(s), budget %d, %d worker(s) at finish",
		len(rep.Evictions), rep.MaxEvictions, rep.FinalWorkers)
	if rep.Surrendered {
		fmt.Fprint(w, " — SURRENDERED")
	}
	fmt.Fprintln(w)
	if len(rep.Evictions) == 0 {
		return
	}
	fmt.Fprintf(w, "%4s %6s %-12s %-24s %6s %12s %10s %10s %10s\n",
		"rank", "iter", "op", "cause", "rewind", "resume loss", "utts", "frames", "rewind(ms)")
	for _, ev := range rep.Evictions {
		cause := ev.Cause
		if len(cause) > 24 {
			cause = cause[:21] + "..."
		}
		fmt.Fprintf(w, "%4d %6d %-12s %-24s %6d %12.5f %10d %10d %10.1f\n",
			ev.Rank, ev.HFIter, ev.Op, cause, ev.RewindIter, ev.ResumeLoss,
			ev.ReshardUtts, ev.ReshardFrames, float64(ev.RewindWall.Nanoseconds())/1e6)
	}
	FlightTable(w, rep.Flight)
}

// FlightTable summarizes a flight recorder's post-mortem bundle: what
// tripped it, the capture window, and how much pre-fault activity from
// each rank it preserved. The bundle itself (full spans, event-log
// entries, metric deltas) is the JSON artifact; this renders the
// human-size digest.
func FlightTable(w io.Writer, b *telemetry.FlightBundle) {
	if b == nil {
		return
	}
	fmt.Fprintf(w, "flight recorder: %s\n", b.Reason)
	fmt.Fprintf(w, "  captured %s window before %s: %d span(s), %d event(s), %d rank(s), %d span(s) dropped\n",
		b.Window.Round(time.Millisecond), b.CapturedAt.Format(time.RFC3339),
		len(b.Spans), len(b.Events), len(b.Ranks), b.DroppedSpans)
	perRank := map[int]int{}
	for _, ev := range b.Spans {
		perRank[ev.Rank]++
	}
	for _, rank := range b.Ranks {
		fmt.Fprintf(w, "  rank %d: %d span(s)", rank, perRank[rank])
		for _, d := range b.Deltas {
			if d.Rank == rank && len(d.Counters) > 0 {
				fmt.Fprintf(w, ", %d counter(s) moved in window", len(d.Counters))
			}
		}
		fmt.Fprintln(w)
	}
}
