package report

import (
	"fmt"
	"io"

	"repro/internal/core"
)

// FaultTable renders an elastic run's fault report: the eviction budget
// summary and one row per evicted worker (which operation exposed the
// fault, how far the run rewound, and the size of the re-sharded data).
// The companion latency distributions (rewind wall time, heartbeat RTTs)
// live in the metrics registry and render via MetricsTable.
func FaultTable(w io.Writer, rep *core.FaultReport) {
	if rep == nil {
		return
	}
	fmt.Fprintf(w, "elastic fault report: %d eviction(s), budget %d, %d worker(s) at finish",
		len(rep.Evictions), rep.MaxEvictions, rep.FinalWorkers)
	if rep.Surrendered {
		fmt.Fprint(w, " — SURRENDERED")
	}
	fmt.Fprintln(w)
	if len(rep.Evictions) == 0 {
		return
	}
	fmt.Fprintf(w, "%4s %6s %-12s %-24s %6s %12s %10s %10s %10s\n",
		"rank", "iter", "op", "cause", "rewind", "resume loss", "utts", "frames", "rewind(ms)")
	for _, ev := range rep.Evictions {
		cause := ev.Cause
		if len(cause) > 24 {
			cause = cause[:21] + "..."
		}
		fmt.Fprintf(w, "%4d %6d %-12s %-24s %6d %12.5f %10d %10d %10.1f\n",
			ev.Rank, ev.HFIter, ev.Op, cause, ev.RewindIter, ev.ResumeLoss,
			ev.ReshardUtts, ev.ReshardFrames, float64(ev.RewindWall.Nanoseconds())/1e6)
	}
}
