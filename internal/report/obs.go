package report

import (
	"fmt"
	"io"
	"time"

	"repro/internal/hf"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/obs/telemetry"
)

// MPITable renders a rank's per-phase communication profile from a real
// run — the measured counterpart of the simulator's Figure 4/5 tables —
// with a Calls-weighted mean-latency summary row.
func MPITable(w io.Writer, stats []mpi.PhaseStat) {
	fmt.Fprintln(w, "MPI communication by phase (measured)")
	fmt.Fprintf(w, "%-26s %-16s %8s %12s %12s %10s %10s %10s\n",
		"phase", "category", "calls", "bytes", "total(ms)", "min(µs)", "max(µs)", "mean(µs)")
	for _, ps := range stats {
		s := ps.Stat
		fmt.Fprintf(w, "%-26s %-16s %8d %12d %12.3f %10.1f %10.1f %10.1f\n",
			ps.Phase, ps.Cat.String(), s.Calls, s.Bytes,
			float64(s.Time.Microseconds())/1e3,
			float64(s.Min.Nanoseconds())/1e3,
			float64(s.Max.Nanoseconds())/1e3,
			float64(s.MeanLatency().Nanoseconds())/1e3)
	}
	mean := mpi.WeightedMeanLatency(stats)
	fmt.Fprintf(w, "%-26s %-16s %8s %12s %12s %10s %10s %10.1f\n",
		"all", "", "", "", "", "", "", float64(mean.Nanoseconds())/1e3)
}

// MetricsTable renders a registry snapshot as three sections: counters,
// gauges, and histogram summaries (count/mean/p50/p99/max).
func MetricsTable(w io.Writer, snap obs.Snapshot) {
	if len(snap.Counters) > 0 {
		fmt.Fprintln(w, "counters")
		for _, c := range snap.Counters {
			fmt.Fprintf(w, "  %-42s %14d\n", c.Name, c.Value)
		}
	}
	if len(snap.Gauges) > 0 {
		fmt.Fprintln(w, "gauges")
		for _, g := range snap.Gauges {
			fmt.Fprintf(w, "  %-42s %14g\n", g.Name, g.Value)
		}
	}
	if len(snap.Histograms) > 0 {
		fmt.Fprintln(w, "histograms")
		fmt.Fprintf(w, "  %-42s %10s %12s %12s %12s %12s\n", "name", "count", "mean", "p50", "p99", "max")
		for _, h := range snap.Histograms {
			fmt.Fprintf(w, "  %-42s %10d %12.1f %12d %12d %12d\n",
				h.Name, h.Count, h.Mean, h.P50, h.P99, h.Max)
		}
	}
}

// TelemetryTable renders the telemetry plane's per-rank rollup: one row
// per rank with its clock offset into the master timebase, counter and
// histogram totals, and spans lost to ring overwrites — the at-a-glance
// cross-rank view the merged trace details.
func TelemetryTable(w io.Writer, m *telemetry.Merger) {
	ranks := m.Ranks()
	if len(ranks) == 0 {
		return
	}
	snaps := m.Snapshots()
	_, perRankDrop := m.Dropped()
	fmt.Fprintln(w, "telemetry by rank (merged at master)")
	fmt.Fprintf(w, "%4s %14s %10s %8s %12s %10s\n",
		"rank", "clock offset", "counters", "gauges", "histograms", "dropped")
	for _, rank := range ranks {
		s := snaps[rank]
		fmt.Fprintf(w, "%4d %14s %10d %8d %12d %10d\n",
			rank, m.Offset(rank).Round(time.Microsecond),
			len(s.Counters), len(s.Gauges), len(s.Histograms), perRankDrop[rank])
	}
}

// HFIterTable renders the per-iteration HF telemetry — the text twin of
// the JSONL export (loss trajectory, damping λ, reduction ratio ρ, CG
// effort, backtracking and line-search activity).
func HFIterTable(w io.Writer, iters []hf.IterStats) {
	fmt.Fprintln(w, "HF iterations")
	fmt.Fprintf(w, "%4s %12s %10s %8s %5s %4s %5s %7s %4s %12s\n",
		"iter", "loss", "lambda", "rho", "cg", "bt", "best", "alpha", "acc", "|grad|")
	for _, s := range iters {
		acc := "yes"
		if !s.Accepted {
			acc = "no"
		}
		fmt.Fprintf(w, "%4d %12.5f %10.3g %8.3f %5d %4d %5d %7.3f %4s %12.4g\n",
			s.Iter, s.Loss, s.Lambda, s.Rho, s.CGIters, s.Backtracks, s.BestIdx, s.Alpha, acc, s.GradNorm)
	}
}
