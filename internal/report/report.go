// Package report renders the paper's tables and figures from simulator
// and trainer outputs as text, shared by cmd/bgqsim, cmd/experiments and
// the benchmark harness.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/bgq"
	"repro/internal/corpus"
	"repro/internal/workload"
)

// Fig1Configs are the Blue Gene/Q configurations of Figure 1.
func Fig1Configs(twoRacks bool) []bgq.Config {
	cfgs := []bgq.Config{
		{Ranks: 1024, RanksPerNode: 1, ThreadsPerRank: 16},
		{Ranks: 1024, RanksPerNode: 1, ThreadsPerRank: 32},
		{Ranks: 1024, RanksPerNode: 1, ThreadsPerRank: 64},
		{Ranks: 2048, RanksPerNode: 2, ThreadsPerRank: 32},
		{Ranks: 4096, RanksPerNode: 4, ThreadsPerRank: 16},
	}
	if twoRacks {
		cfgs = append(cfgs, bgq.Config{Ranks: 8192, RanksPerNode: 4, ThreadsPerRank: 16})
	}
	return cfgs
}

// Fig1 runs the Figure 1 sweep (execution time per configuration) and
// writes the series the paper plots.
func Fig1(w io.Writer, counts workload.AlgoCounts, twoRacks bool, title string) error {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-12s %12s %10s\n", "config", "exec time(s)", "hours")
	m := bgq.BlueGeneQ()
	for _, cfg := range Fig1Configs(twoRacks) {
		r, err := workload.Simulate(m, cfg, counts, nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %12.0f %10.2f\n", cfg.Label(), r.TotalSec, r.TotalSec/3600)
	}
	return nil
}

// cycleConfigs are the three configurations of Figures 2-5.
func cycleConfigs() []bgq.Config {
	return []bgq.Config{
		{Ranks: 1024, RanksPerNode: 1, ThreadsPerRank: 64},
		{Ranks: 2048, RanksPerNode: 2, ThreadsPerRank: 32},
		{Ranks: 4096, RanksPerNode: 4, ThreadsPerRank: 16},
	}
}

// sortedPhases returns the report's phase names in stable order.
func sortedPhases(r workload.RankReport) []string {
	names := make([]string, 0, len(r))
	for n := range r {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CycleBreakdown writes the Figure 2/3 per-function cycle breakdowns
// (committed / AXU-FXU dependency stalls / IU-empty) for the master or
// the mean worker across the three paper configurations.
func CycleBreakdown(w io.Writer, counts workload.AlgoCounts, master bool, title string) error {
	fmt.Fprintf(w, "%s\n", title)
	m := bgq.BlueGeneQ()
	for _, cfg := range cycleConfigs() {
		r, err := workload.Simulate(m, cfg, counts, nil)
		if err != nil {
			return err
		}
		rep := r.WorkerMean
		if master {
			rep = r.Master
		}
		fmt.Fprintf(w, "-- %s --\n", cfg.Label())
		fmt.Fprintf(w, "%-26s %14s %14s %14s\n", "function", "committed", "AXU/FXU_stall", "IU_empty")
		for _, name := range sortedPhases(rep) {
			c := rep[name].Cycles
			if c.Total() <= 0 {
				continue
			}
			fmt.Fprintf(w, "%-26s %14.3e %14.3e %14.3e\n", name, c.Committed, c.AXUStall, c.IUEmpty)
		}
	}
	return nil
}

// MPIBreakdown writes the Figure 4/5 per-function MPI time split into
// collective and point-to-point seconds.
func MPIBreakdown(w io.Writer, counts workload.AlgoCounts, master bool, title string) error {
	fmt.Fprintf(w, "%s\n", title)
	m := bgq.BlueGeneQ()
	for _, cfg := range cycleConfigs() {
		r, err := workload.Simulate(m, cfg, counts, nil)
		if err != nil {
			return err
		}
		rep := r.WorkerMean
		if master {
			rep = r.Master
		}
		fmt.Fprintf(w, "-- %s --\n", cfg.Label())
		fmt.Fprintf(w, "%-26s %14s %14s\n", "function", "collective(s)", "p2p(s)")
		for _, name := range sortedPhases(rep) {
			p := rep[name]
			if p.CollSec <= 0 && p.P2PSec <= 0 {
				continue
			}
			fmt.Fprintf(w, "%-26s %14.2f %14.2f\n", name, p.CollSec, p.P2PSec)
		}
	}
	return nil
}

// Table1Row is one row of the paper's Table I, extended with the §VIII
// energy comparison (kWh per training run on each platform).
type Table1Row struct {
	Label        string
	IntelHours   float64
	BGQHours     float64
	SpeedUp      float64
	FreqAdjusted float64
	IntelKWh     float64
	BGQKWh       float64
}

// Table1 computes the Table I comparison for both criteria.
func Table1() ([]Table1Row, error) {
	bg := bgq.BlueGeneQ()
	intel := bgq.IntelXeonCluster()
	intelCfg := bgq.Config{Ranks: 96, RanksPerNode: 2, ThreadsPerRank: 8}
	bgCfg := bgq.Config{Ranks: 4096, RanksPerNode: 4, ThreadsPerRank: 16}
	freq := intel.Node.ClockHz / bg.Node.ClockHz

	var rows []Table1Row
	for _, spec := range []struct {
		label string
		seq   bool
	}{
		{"50-hour Cross-Entropy", false},
		{"50-hour Sequence", true},
	} {
		counts := workload.Preset50h(spec.seq)
		ri, err := workload.Simulate(intel, intelCfg, counts, nil)
		if err != nil {
			return nil, err
		}
		rb, err := workload.Simulate(bg, bgCfg, counts, nil)
		if err != nil {
			return nil, err
		}
		sp := ri.TotalSec / rb.TotalSec
		rows = append(rows, Table1Row{
			Label:        spec.label,
			IntelHours:   ri.TotalSec / 3600,
			BGQHours:     rb.TotalSec / 3600,
			SpeedUp:      sp,
			FreqAdjusted: sp * freq,
			IntelKWh:     intel.EnergyKWh(intelCfg, ri.TotalSec),
			BGQKWh:       bg.EnergyKWh(bgCfg, rb.TotalSec),
		})
	}
	return rows, nil
}

// WriteTable1 renders Table I in the paper's column layout, extended with
// the energy comparison of §VIII.
func WriteTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "TABLE I. SCALING UP PERFORMANCE")
	fmt.Fprintf(w, "%-24s %16s %14s %9s %10s %11s %10s\n",
		"Training data", "Intel Xeon (hrs)", "BG/Q 4096 (hrs)", "Speed Up", "Freq Adj", "Intel kWh", "BG/Q kWh")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %16.1f %14.2f %8.1fx %9.1fx %11.0f %10.0f\n",
			r.Label, r.IntelHours, r.BGQHours, r.SpeedUp, r.FreqAdjusted, r.IntelKWh, r.BGQKWh)
	}
}

// Scaling writes the rank-scaling study (§I/§VIII claims).
func Scaling(w io.Writer, counts workload.AlgoCounts) error {
	fmt.Fprintln(w, "Scaling study: 50-hour cross-entropy, ranks-4-16 configurations")
	fmt.Fprintf(w, "%-8s %12s %9s %8s %6s\n", "ranks", "time(s)", "speedup", "ideal", "eff")
	m := bgq.BlueGeneQ()
	var base float64
	for i, ranks := range []int{64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384} {
		cfg := bgq.Config{Ranks: ranks, RanksPerNode: 4, ThreadsPerRank: 16}
		r, err := workload.Simulate(m, cfg, counts, nil)
		if err != nil {
			return err
		}
		if i == 0 {
			base = r.TotalSec
		}
		sp := base / r.TotalSec
		ideal := float64(ranks) / 64
		fmt.Fprintf(w, "%-8d %12.0f %9.2f %8.0f %6.2f\n", ranks, r.TotalSec, sp, ideal, sp/ideal)
	}
	return nil
}

// LoadBalance writes the §V-C partitioning ablation.
func LoadBalance(w io.Writer, counts workload.AlgoCounts) error {
	fmt.Fprintln(w, "Load-balance ablation (§V-C): round-robin vs sorted-greedy utterance partitioning")
	fmt.Fprintf(w, "%-8s %-14s %12s %11s\n", "ranks", "partitioner", "time(s)", "imbalance")
	m := bgq.BlueGeneQ()
	lengths := corpus.GenerateLengths(corpus.Config{Seed: 42, NumUtterances: 45000})
	for _, ranks := range []int{256, 1024, 4096} {
		cfg := bgq.Config{Ranks: ranks, RanksPerNode: 4, ThreadsPerRank: 16}
		for _, part := range []corpus.Partitioner{corpus.RoundRobin{}, corpus.SortedGreedy{}} {
			shards := workload.ShardsFromPartition(lengths, cfg.Ranks-1, part, counts.TrainFrames)
			r, err := workload.Simulate(m, cfg, counts, shards)
			if err != nil {
				return err
			}
			utts := corpus.UtterancesFromLengths(lengths)
			bal := corpus.MeasureBalance(part.Partition(utts, cfg.Ranks-1))
			fmt.Fprintf(w, "%-8d %-14s %12.0f %11.3f\n", ranks, part.Name(), r.TotalSec, bal.Imbalance)
		}
	}
	return nil
}

// WeightSync writes the §V-B socket-era p2p vs MPI broadcast comparison.
func WeightSync(w io.Writer, counts workload.AlgoCounts) error {
	fmt.Fprintln(w, "Weight synchronization (§V-B): serial p2p push vs MPI_Bcast")
	fmt.Fprintf(w, "%-8s %14s %14s %9s\n", "ranks", "p2p(s)", "bcast(s)", "ratio")
	m := bgq.BlueGeneQ()
	for _, ranks := range []int{64, 256, 1024, 4096} {
		cfg := bgq.Config{Ranks: ranks, RanksPerNode: 4, ThreadsPerRank: 16}
		shape, err := torusShape(cfg)
		if err != nil {
			return err
		}
		p2p := workload.WeightSyncP2PTime(m, cfg, counts.ParamBytes())
		bc := m.BcastTime(counts.ParamBytes(), cfg, shape)
		fmt.Fprintf(w, "%-8d %14.2f %14.4f %8.0fx\n", ranks, p2p, bc, p2p/bc)
	}
	return nil
}

// Separator writes a section separator.
func Separator(w io.Writer) {
	fmt.Fprintln(w, strings.Repeat("=", 72))
}
