package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/workload"
)

// small shrinks a workload so report tests stay fast: tiny data and few
// iterations keep every Simulate call cheap while exercising the full
// rendering path.
func small() workload.AlgoCounts {
	c := workload.Preset50h(false)
	c.TrainFrames = 200_000
	c.HeldFrames = 10_000
	c.SampleFrames = 4_000
	c.CGItersPerHF = 5
	c.LossEvalsPerHF = 2
	c.HFIters = 2
	return c
}

func TestFig1Configs(t *testing.T) {
	one := Fig1Configs(false)
	two := Fig1Configs(true)
	if len(two) != len(one)+1 {
		t.Fatalf("two-rack sweep should add one config: %d vs %d", len(two), len(one))
	}
	if two[len(two)-1].Ranks != 8192 {
		t.Fatal("two-rack config missing")
	}
	for _, cfg := range one {
		if cfg.Ranks/cfg.RanksPerNode > 1024 {
			t.Fatalf("one-rack sweep uses %d nodes", cfg.Ranks/cfg.RanksPerNode)
		}
	}
}

func TestFig1Rendering(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig1(&buf, small(), false, "Figure 1(a) test"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 1(a) test", "1024-1-64", "2048-2-32", "4096-4-16"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCycleBreakdownRendering(t *testing.T) {
	var buf bytes.Buffer
	if err := CycleBreakdown(&buf, small(), true, "Fig 2 test"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"cg_minimize", "load_data", "AXU/FXU_stall", "4096-4-16"} {
		if !strings.Contains(out, want) {
			t.Fatalf("master breakdown missing %q", want)
		}
	}
	buf.Reset()
	if err := CycleBreakdown(&buf, small(), false, "Fig 3 test"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "worker_curvature_product") {
		t.Fatal("worker breakdown missing worker_curvature_product")
	}
}

func TestMPIBreakdownRendering(t *testing.T) {
	var buf bytes.Buffer
	if err := MPIBreakdown(&buf, small(), true, "Fig 4 test"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "collective(s)") || !strings.Contains(buf.String(), "load_data") {
		t.Fatalf("MPI breakdown malformed:\n%s", buf.String())
	}
}

func TestTable1RowsSane(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	ce, seq := rows[0], rows[1]
	if !strings.Contains(ce.Label, "Cross-Entropy") || !strings.Contains(seq.Label, "Sequence") {
		t.Fatalf("labels: %q %q", ce.Label, seq.Label)
	}
	for _, r := range rows {
		if r.SpeedUp <= 1 || r.IntelHours <= r.BGQHours {
			t.Fatalf("BG/Q must win: %+v", r)
		}
		if r.FreqAdjusted <= r.SpeedUp {
			t.Fatalf("frequency adjustment must raise the speedup: %+v", r)
		}
	}
	if seq.SpeedUp >= ce.SpeedUp {
		t.Fatalf("sequence speedup %v must trail CE %v", seq.SpeedUp, ce.SpeedUp)
	}
	var buf bytes.Buffer
	WriteTable1(&buf, rows)
	if !strings.Contains(buf.String(), "TABLE I") {
		t.Fatal("table header missing")
	}
}

func TestScalingRendering(t *testing.T) {
	var buf bytes.Buffer
	if err := Scaling(&buf, small()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ranks", "16384", "speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("scaling output missing %q", want)
		}
	}
}

func TestWeightSyncRendering(t *testing.T) {
	var buf bytes.Buffer
	if err := WeightSync(&buf, small()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bcast(s)") {
		t.Fatal("weight-sync table malformed")
	}
}

func TestSeparator(t *testing.T) {
	var buf bytes.Buffer
	Separator(&buf)
	if len(strings.TrimSpace(buf.String())) < 10 {
		t.Fatal("separator too short")
	}
}

// §VIII energy claim at the run level: BG/Q must finish the training for
// less energy than the Xeon cluster despite using far more nodes.
func TestTable1EnergyClaim(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.BGQKWh <= 0 || r.IntelKWh <= 0 {
			t.Fatalf("energy missing: %+v", r)
		}
		if r.BGQKWh >= 2.0*r.IntelKWh {
			t.Fatalf("%s: BG/Q energy %v kWh should not dwarf Intel's %v kWh", r.Label, r.BGQKWh, r.IntelKWh)
		}
	}
}
