package report

import (
	"repro/internal/bgq"
	"repro/internal/torus"
)

// torusShape resolves the torus shape of a BG/Q configuration.
func torusShape(cfg bgq.Config) (torus.Shape, error) {
	return torus.ShapeFor(cfg.Nodes())
}
