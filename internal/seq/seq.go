// Package seq implements an utterance-level sequence training criterion,
// the stand-in for the lattice-based discriminative ("sequence") objective
// of the paper's Table I second row.
//
// The criterion is a linear-chain log-linear model over HMM states: a path
// scores the sum of per-frame DNN logits plus fixed transition scores, and
// the loss of an utterance is the negative log-posterior of its reference
// state sequence, computed exactly with the forward-backward algorithm in
// the log domain. Gradients with respect to the logits are posterior state
// marginals minus the reference one-hots and are backpropagated through
// the DNN by the nn package.
//
// This preserves what the paper's sequence criterion exercises at the
// systems level: per-utterance (not per-frame) work whose cost grows with
// utterance length, a different compute/communication ratio than
// cross-entropy, and gradients that couple frames within an utterance.
package seq

import (
	"fmt"
	"math"

	"repro/internal/corpus"
	"repro/internal/tensor"
)

// Transitions holds the fixed log-domain transition model of the chain:
// Init[s] scores starting in s and Trans[s'][s] scores moving s'→s.
type Transitions struct {
	NumStates int
	Init      []float64
	Trans     [][]float64
}

// Uniform returns a transition model that is uniform except for a bonus on
// self-loops, mimicking HMM state persistence. bonus is in log-space
// (e.g. 2.0 makes staying e²≈7.4× likelier than switching).
func Uniform(states int, selfLoopBonus float64) Transitions {
	tr := Transitions{
		NumStates: states,
		Init:      make([]float64, states),
		Trans:     make([][]float64, states),
	}
	for s := range tr.Trans {
		tr.Trans[s] = make([]float64, states)
		tr.Trans[s][s] = selfLoopBonus
	}
	return tr
}

// Estimate builds a transition model from reference state bigrams in the
// given utterances with add-one smoothing, normalized to log-probabilities.
func Estimate(utts []*corpus.Utterance, states int) Transitions {
	initCounts := make([]float64, states)
	counts := make([][]float64, states)
	for s := range counts {
		counts[s] = make([]float64, states)
		for j := range counts[s] {
			counts[s][j] = 1 // add-one smoothing
		}
		initCounts[s] = 1
	}
	for _, u := range utts {
		if len(u.States) == 0 {
			continue
		}
		initCounts[u.States[0]]++
		for t := 1; t < len(u.States); t++ {
			counts[u.States[t-1]][u.States[t]]++
		}
	}
	tr := Transitions{
		NumStates: states,
		Init:      make([]float64, states),
		Trans:     make([][]float64, states),
	}
	var initTotal float64
	for _, c := range initCounts {
		initTotal += c
	}
	for s := range tr.Init {
		//lint:ignore divguard add-one smoothing makes initTotal ≥ states ≥ 1
		tr.Init[s] = math.Log(initCounts[s] / initTotal)
	}
	for s := range counts {
		var total float64
		for _, c := range counts[s] {
			total += c
		}
		tr.Trans[s] = make([]float64, states)
		for j := range counts[s] {
			//lint:ignore divguard add-one smoothing makes total ≥ states ≥ 1
			tr.Trans[s][j] = math.Log(counts[s][j] / total)
		}
	}
	return tr
}

// LossGrad computes the sequence loss of one utterance and its gradient
// with respect to the logits.
//
// logits is T×S (frames × states), ref the reference state per frame.
// dlogits, also T×S, receives γ_t(s) − 1{s == ref_t} where γ are the
// posterior marginals; it is overwritten. The returned loss is
// logZ − score(ref) ≥ 0, summed over the utterance.
func LossGrad(logits *tensor.Matrix, ref []int, tr Transitions, dlogits *tensor.Matrix) float64 {
	T, S := logits.Rows, logits.Cols
	if S != tr.NumStates {
		panic(fmt.Sprintf("seq: %d states in logits, transitions have %d", S, tr.NumStates))
	}
	if len(ref) != T {
		panic(fmt.Sprintf("seq: %d reference states for %d frames", len(ref), T))
	}
	if dlogits.Rows != T || dlogits.Cols != S {
		panic("seq: dlogits shape mismatch")
	}
	if T == 0 {
		return 0
	}

	// Forward pass (log domain): alpha[t][s].
	alpha := make([][]float64, T)
	for t := range alpha {
		alpha[t] = make([]float64, S)
	}
	row0 := logits.Row(0)
	for s := 0; s < S; s++ {
		alpha[0][s] = tr.Init[s] + float64(row0[s])
	}
	work := make([]float64, S)
	for t := 1; t < T; t++ {
		row := logits.Row(t)
		for s := 0; s < S; s++ {
			for sp := 0; sp < S; sp++ {
				work[sp] = alpha[t-1][sp] + tr.Trans[sp][s]
			}
			alpha[t][s] = logSumExp(work) + float64(row[s])
		}
	}
	logZ := logSumExp(alpha[T-1])

	// Backward pass: beta[t][s].
	beta := make([][]float64, T)
	for t := range beta {
		beta[t] = make([]float64, S)
	}
	for t := T - 2; t >= 0; t-- {
		rowNext := logits.Row(t + 1)
		for s := 0; s < S; s++ {
			for sn := 0; sn < S; sn++ {
				work[sn] = tr.Trans[s][sn] + float64(rowNext[sn]) + beta[t+1][sn]
			}
			beta[t][s] = logSumExp(work)
		}
	}

	// Reference path score.
	score := tr.Init[ref[0]] + float64(logits.At(0, ref[0]))
	for t := 1; t < T; t++ {
		score += tr.Trans[ref[t-1]][ref[t]] + float64(logits.At(t, ref[t]))
	}

	// Gradient: posterior marginals minus reference one-hots.
	for t := 0; t < T; t++ {
		dst := dlogits.Row(t)
		for s := 0; s < S; s++ {
			dst[s] = float32(math.Exp(alpha[t][s] + beta[t][s] - logZ))
		}
		dst[ref[t]] -= 1
	}
	return logZ - score
}

// Marginals returns the posterior state marginals γ_t(s) as a T×S matrix.
// Rows sum to 1. Exposed for tests and diagnostics.
func Marginals(logits *tensor.Matrix, tr Transitions) *tensor.Matrix {
	T, S := logits.Rows, logits.Cols
	g := tensor.NewMatrix(T, S)
	if T == 0 {
		return g
	}
	ref := make([]int, T) // dummy reference; marginals don't depend on it
	d := tensor.NewMatrix(T, S)
	LossGrad(logits, ref, tr, d)
	for t := 0; t < T; t++ {
		copy(g.Row(t), d.Row(t))
		g.Row(t)[ref[t]] += 1
	}
	return g
}

// logSumExp returns log Σ exp(x_i), guarded against overflow.
func logSumExp(x []float64) float64 {
	max := x[0]
	for _, v := range x[1:] {
		if v > max {
			max = v
		}
	}
	if math.IsInf(max, -1) {
		return max
	}
	var sum float64
	for _, v := range x {
		sum += math.Exp(v - max)
	}
	return max + math.Log(sum)
}
