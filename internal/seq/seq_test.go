package seq

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/corpus"
	"repro/internal/tensor"
)

func TestUniformTransitions(t *testing.T) {
	tr := Uniform(4, 2)
	if tr.NumStates != 4 {
		t.Fatal("states")
	}
	if tr.Trans[1][1] != 2 || tr.Trans[1][2] != 0 {
		t.Fatal("self-loop bonus wrong")
	}
	for _, v := range tr.Init {
		if v != 0 {
			t.Fatal("init must be uniform")
		}
	}
}

func TestEstimateNormalized(t *testing.T) {
	c := corpus.Generate(corpus.Config{Seed: 1, NumUtterances: 30, NumStates: 5})
	tr := Estimate(c.Utts, 5)
	var initSum float64
	for _, v := range tr.Init {
		initSum += math.Exp(v)
	}
	if math.Abs(initSum-1) > 1e-9 {
		t.Fatalf("init probs sum to %v", initSum)
	}
	for s := range tr.Trans {
		var sum float64
		for _, v := range tr.Trans[s] {
			sum += math.Exp(v)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", s, sum)
		}
	}
	// Self-loops dominate under the segmental generator (mean segment 12).
	if tr.Trans[0][0] <= tr.Trans[0][1] {
		t.Fatal("self-loop should be likeliest transition")
	}
}

func TestLossNonNegativeAndZeroGradAtCertainty(t *testing.T) {
	// Logits hugely favoring the reference path → loss ≈ 0, grad ≈ 0.
	T, S := 5, 3
	ref := []int{0, 0, 1, 1, 2}
	logits := tensor.NewMatrix(T, S)
	for t2 := 0; t2 < T; t2++ {
		logits.Set(t2, ref[t2], 50)
	}
	d := tensor.NewMatrix(T, S)
	tr := Uniform(S, 0)
	loss := LossGrad(logits, ref, tr, d)
	if loss < 0 || loss > 1e-6 {
		t.Fatalf("loss %v, want ≈0", loss)
	}
	if tensor.MaxAbsDiff(d, tensor.NewMatrix(T, S)) > 1e-6 {
		t.Fatal("gradient should vanish at certainty")
	}
}

func TestLossSingleFrameEqualsCE(t *testing.T) {
	// With T=1 and uniform init, the chain posterior is the softmax, so the
	// loss must equal frame-level cross-entropy.
	logits := tensor.FromSlice(1, 3, []float32{1, 2, 0.5})
	d := tensor.NewMatrix(1, 3)
	loss := LossGrad(logits, []int{1}, Uniform(3, 0), d)
	var z float64
	for _, v := range logits.Row(0) {
		z += math.Exp(float64(v))
	}
	want := math.Log(z) - 2
	if math.Abs(loss-want) > 1e-6 {
		t.Fatalf("loss %v, want %v", loss, want)
	}
	// Gradient = softmax - onehot.
	p1 := math.Exp(2) / z
	if math.Abs(float64(d.At(0, 1))-(p1-1)) > 1e-5 {
		t.Fatalf("grad %v, want %v", d.At(0, 1), p1-1)
	}
}

func TestMarginalsRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	logits := tensor.RandMatrix(rng, 12, 4, 2)
	g := Marginals(logits, Uniform(4, 1.5))
	for t2 := 0; t2 < g.Rows; t2++ {
		var sum float64
		for _, v := range g.Row(t2) {
			if v < -1e-6 {
				t.Fatal("negative marginal")
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-4 {
			t.Fatalf("frame %d marginals sum to %v", t2, sum)
		}
	}
}

// Gradient check: dlogits from forward-backward vs finite differences of
// the loss with respect to individual logits.
func TestGradientMatchesFiniteDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	T, S := 6, 4
	logits := tensor.RandMatrix(rng, T, S, 1)
	ref := make([]int, T)
	for i := range ref {
		ref[i] = rng.Intn(S)
	}
	tr := Uniform(S, 1)
	d := tensor.NewMatrix(T, S)
	LossGrad(logits, ref, tr, d)

	const eps = 1e-3
	for trial := 0; trial < 30; trial++ {
		ti, si := rng.Intn(T), rng.Intn(S)
		orig := logits.At(ti, si)
		dd := tensor.NewMatrix(T, S)
		logits.Set(ti, si, orig+eps)
		lp := LossGrad(logits, ref, tr, dd)
		logits.Set(ti, si, orig-eps)
		lm := LossGrad(logits, ref, tr, dd)
		logits.Set(ti, si, orig)
		fd := (lp - lm) / (2 * eps)
		if math.Abs(fd-float64(d.At(ti, si))) > 5e-3 {
			t.Fatalf("logit (%d,%d): analytic %v vs FD %v", ti, si, d.At(ti, si), fd)
		}
	}
}

// Property: loss is invariant to adding a constant to all logits of a
// frame (softmax shift invariance carries over to the chain).
func TestShiftInvarianceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(shift float32, frameSeed uint8) bool {
		if math.IsNaN(float64(shift)) || math.Abs(float64(shift)) > 20 {
			return true
		}
		T, S := 5, 3
		logits := tensor.RandMatrix(rng, T, S, 1)
		ref := []int{0, 1, 2, 1, 0}
		tr := Uniform(S, 0.5)
		d := tensor.NewMatrix(T, S)
		l1 := LossGrad(logits, ref, tr, d)
		fi := int(frameSeed) % T
		for s := 0; s < S; s++ {
			logits.Set(fi, s, logits.At(fi, s)+shift)
		}
		l2 := LossGrad(logits, ref, tr, d)
		return math.Abs(l1-l2) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyUtterance(t *testing.T) {
	logits := tensor.NewMatrix(0, 3)
	d := tensor.NewMatrix(0, 3)
	if loss := LossGrad(logits, nil, Uniform(3, 0), d); loss != 0 {
		t.Fatalf("empty loss %v", loss)
	}
}

func TestShapePanics(t *testing.T) {
	logits := tensor.NewMatrix(2, 3)
	d := tensor.NewMatrix(2, 3)
	cases := []func(){
		func() { LossGrad(logits, []int{0}, Uniform(3, 0), d) },                         // ref length
		func() { LossGrad(logits, []int{0, 0}, Uniform(4, 0), d) },                      // state count
		func() { LossGrad(logits, []int{0, 0}, Uniform(3, 0), tensor.NewMatrix(1, 3)) }, // dlogits shape
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestLogSumExpStability(t *testing.T) {
	if v := logSumExp([]float64{-1e308, -1e308}); math.IsNaN(v) {
		t.Fatal("logSumExp NaN on tiny inputs")
	}
	if v := logSumExp([]float64{1000, 1000}); math.Abs(v-(1000+math.Log(2))) > 1e-9 {
		t.Fatalf("logSumExp large inputs: %v", v)
	}
	if v := logSumExp([]float64{math.Inf(-1), math.Inf(-1)}); !math.IsInf(v, -1) {
		t.Fatalf("logSumExp(-inf) = %v", v)
	}
}

// Sequence loss should decrease when logits move toward the reference —
// the descent-direction sanity check the trainer relies on.
func TestGradientIsDescentDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	T, S := 8, 4
	logits := tensor.RandMatrix(rng, T, S, 1)
	ref := make([]int, T)
	for i := range ref {
		ref[i] = rng.Intn(S)
	}
	tr := Estimate(corpus.Generate(corpus.Config{Seed: 9, NumUtterances: 10, NumStates: S}).Utts, S)
	d := tensor.NewMatrix(T, S)
	l0 := LossGrad(logits, ref, tr, d)
	// Step opposite the gradient.
	for t2 := 0; t2 < T; t2++ {
		for s := 0; s < S; s++ {
			logits.Set(t2, s, logits.At(t2, s)-0.1*d.At(t2, s))
		}
	}
	l1 := LossGrad(logits, ref, tr, d)
	if l1 >= l0 {
		t.Fatalf("loss did not decrease along negative gradient: %v → %v", l0, l1)
	}
}
