package seq

import (
	"fmt"

	"repro/internal/tensor"
)

// Viterbi returns the maximum-score state path through the chain for the
// given logits under the transition model — the decoding step that turns
// acoustic-model outputs into recognized sequences. The paper evaluates
// recognition quality as word-error-rate; with the synthetic task, the
// Viterbi path against the reference states gives the analogous
// state-error-rate.
func Viterbi(logits *tensor.Matrix, tr Transitions) []int {
	T, S := logits.Rows, logits.Cols
	if S != tr.NumStates {
		panic(fmt.Sprintf("seq: %d states in logits, transitions have %d", S, tr.NumStates))
	}
	if T == 0 {
		return nil
	}
	score := make([][]float64, T)
	back := make([][]int, T)
	for t := range score {
		score[t] = make([]float64, S)
		back[t] = make([]int, S)
	}
	row0 := logits.Row(0)
	for s := 0; s < S; s++ {
		score[0][s] = tr.Init[s] + float64(row0[s])
	}
	for t := 1; t < T; t++ {
		row := logits.Row(t)
		for s := 0; s < S; s++ {
			bestPrev, bestScore := 0, score[t-1][0]+tr.Trans[0][s]
			for sp := 1; sp < S; sp++ {
				if v := score[t-1][sp] + tr.Trans[sp][s]; v > bestScore {
					bestPrev, bestScore = sp, v
				}
			}
			score[t][s] = bestScore + float64(row[s])
			back[t][s] = bestPrev
		}
	}
	best := 0
	for s := 1; s < S; s++ {
		if score[T-1][s] > score[T-1][best] {
			best = s
		}
	}
	path := make([]int, T)
	path[T-1] = best
	for t := T - 1; t > 0; t-- {
		path[t-1] = back[t][path[t]]
	}
	return path
}

// PathScore returns the chain score of a given state path (init +
// transitions + per-frame logits); Viterbi maximizes this quantity.
func PathScore(logits *tensor.Matrix, path []int, tr Transitions) float64 {
	if len(path) != logits.Rows {
		panic(fmt.Sprintf("seq: path length %d for %d frames", len(path), logits.Rows))
	}
	if len(path) == 0 {
		return 0
	}
	score := tr.Init[path[0]] + float64(logits.At(0, path[0]))
	for t := 1; t < len(path); t++ {
		score += tr.Trans[path[t-1]][path[t]] + float64(logits.At(t, path[t]))
	}
	return score
}

// StateErrorRate returns the fraction of frames whose decoded state
// differs from the reference — the synthetic-task stand-in for the
// paper's word-error-rate metric.
func StateErrorRate(decoded, ref []int) float64 {
	if len(decoded) != len(ref) {
		panic(fmt.Sprintf("seq: %d decoded states for %d references", len(decoded), len(ref)))
	}
	if len(ref) == 0 {
		return 0
	}
	errs := 0
	for i := range ref {
		if decoded[i] != ref[i] {
			errs++
		}
	}
	return float64(errs) / float64(len(ref))
}
