package seq

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// bruteBestPath enumerates all S^T paths — the oracle for Viterbi on tiny
// chains.
func bruteBestPath(logits *tensor.Matrix, tr Transitions) ([]int, float64) {
	T, S := logits.Rows, logits.Cols
	best := make([]int, T)
	bestScore := math.Inf(-1)
	path := make([]int, T)
	var rec func(t int)
	rec = func(t int) {
		if t == T {
			if s := PathScore(logits, path, tr); s > bestScore {
				bestScore = s
				copy(best, path)
			}
			return
		}
		for s := 0; s < S; s++ {
			path[t] = s
			rec(t + 1)
		}
	}
	rec(0)
	return best, bestScore
}

func TestViterbiMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		T, S := 2+rng.Intn(4), 2+rng.Intn(3)
		logits := tensor.RandMatrix(rng, T, S, 2)
		tr := Uniform(S, rng.Float64()*2)
		got := Viterbi(logits, tr)
		want, wantScore := bruteBestPath(logits, tr)
		gotScore := PathScore(logits, got, tr)
		if math.Abs(gotScore-wantScore) > 1e-9 {
			t.Fatalf("trial %d: viterbi score %v vs brute %v (paths %v vs %v)",
				trial, gotScore, wantScore, got, want)
		}
	}
}

// Property: no random path scores above the Viterbi path.
func TestViterbiOptimalityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		T, S := 3+r.Intn(6), 2+r.Intn(4)
		logits := tensor.RandMatrix(rng, T, S, 1.5)
		tr := Uniform(S, 1)
		vit := Viterbi(logits, tr)
		vitScore := PathScore(logits, vit, tr)
		for trial := 0; trial < 10; trial++ {
			path := make([]int, T)
			for i := range path {
				path[i] = r.Intn(S)
			}
			if PathScore(logits, path, tr) > vitScore+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestViterbiObviousPath(t *testing.T) {
	// Logits massively favor states 0,0,1,1: Viterbi must return exactly
	// that.
	logits := tensor.NewMatrix(4, 2)
	want := []int{0, 0, 1, 1}
	for t2, s := range want {
		logits.Set(t2, s, 30)
	}
	got := Viterbi(logits, Uniform(2, 0.5))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("path %v, want %v", got, want)
		}
	}
}

func TestViterbiSelfLoopBiasSmoothsPath(t *testing.T) {
	// Ambiguous frame in the middle: with a strong self-loop bonus the
	// decoder should stay in the current state rather than flip-flop.
	logits := tensor.FromSlice(3, 2, []float32{
		5, 0,
		2.4, 2.5, // nearly tied, slightly favors state 1
		5, 0,
	})
	sticky := Viterbi(logits, Uniform(2, 3))
	if sticky[0] != 0 || sticky[1] != 0 || sticky[2] != 0 {
		t.Fatalf("sticky transitions should hold state 0: %v", sticky)
	}
	free := Viterbi(logits, Uniform(2, 0))
	if free[1] != 1 {
		t.Fatalf("free transitions should follow the logits: %v", free)
	}
}

func TestViterbiEdgesAndPanics(t *testing.T) {
	if got := Viterbi(tensor.NewMatrix(0, 3), Uniform(3, 0)); got != nil {
		t.Fatal("empty chain must give nil path")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for state mismatch")
			}
		}()
		Viterbi(tensor.NewMatrix(2, 3), Uniform(4, 0))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for path length")
			}
		}()
		PathScore(tensor.NewMatrix(2, 3), []int{0}, Uniform(3, 0))
	}()
}

func TestStateErrorRate(t *testing.T) {
	if ser := StateErrorRate([]int{0, 1, 2, 2}, []int{0, 1, 1, 2}); math.Abs(ser-0.25) > 1e-12 {
		t.Fatalf("SER %v, want 0.25", ser)
	}
	if StateErrorRate(nil, nil) != 0 {
		t.Fatal("empty SER must be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	StateErrorRate([]int{0}, []int{0, 1})
}

// End-to-end sanity: decoding smoothed logits built from the reference
// with noise should beat frame-wise argmax when the noise flips isolated
// frames (the transition prior cleans them up).
func TestViterbiBeatsArgmaxUnderIsolatedNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	T, S := 60, 4
	ref := make([]int, T)
	state := 0
	for t2 := range ref {
		if rng.Float64() < 0.05 {
			state = rng.Intn(S)
		}
		ref[t2] = state
	}
	logits := tensor.NewMatrix(T, S)
	for t2 := 0; t2 < T; t2++ {
		logits.Set(t2, ref[t2], 2)
		// Occasionally corrupt a single frame hard.
		if t2%7 == 3 {
			logits.Set(t2, (ref[t2]+1)%S, 3)
		}
	}
	argmax := make([]int, T)
	for t2 := 0; t2 < T; t2++ {
		row := logits.Row(t2)
		best := 0
		for s, v := range row {
			if v > row[best] {
				best = s
			}
		}
		argmax[t2] = best
	}
	vit := Viterbi(logits, Uniform(S, 2.5))
	if StateErrorRate(vit, ref) >= StateErrorRate(argmax, ref) {
		t.Fatalf("viterbi SER %v should beat argmax SER %v",
			StateErrorRate(vit, ref), StateErrorRate(argmax, ref))
	}
}
