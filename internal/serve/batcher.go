package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// request is one admitted scoring request parked in the queue: the
// caller's feature row, the caller-owned output buffer the scores land
// in, and the completion signal its Score call blocks on.
type request struct {
	row   []float32
	out   []float32
	start time.Time
	err   error
	done  chan struct{}
}

// scorer runs one batch of requests through the model. Implementations
// are single-goroutine (each scoring worker owns one): localScorer
// copies rows into preallocated nn.InferBuffers and runs the forward
// pass in-process; replicaScorer ships the batch to a replica rank over
// the mpi fabric. The returned logits matrix is owned by the scorer and
// valid until its next score call.
type scorer interface {
	score(batch []*request) (*tensor.Matrix, error)
	// stop releases the scorer at drain time (replica shutdown; no-op
	// locally).
	stop() error
}

// batcher is the serving pipeline: bounded admission queue → collector
// goroutine coalescing requests into batches (flush on batch-full or on
// the oldest request's deadline) → scoring workers.
//
// Shutdown protocol (close): draining flips first, so admission stops;
// the closer then waits for the pending count to hit zero (every
// admitted request completed) before closing stop — the collector exits
// idle, workers exit on the closed batches channel. The pending counter
// uses the double-check idiom on the admission side so a racing Score
// can never slip an uncounted request past the drain: it increments
// pending, re-checks draining, and backs out if the drain has begun.
type batcher struct {
	s       *Server
	scorers []scorer

	queue   chan *request
	batches chan []*request
	stop    chan struct{} // closed after drain: collector exits
	colDone chan struct{} // closed when the collector has returned
	wg      sync.WaitGroup

	draining atomic.Bool
	pending  atomic.Int64 // admitted, not yet completed
	ewmaNs   atomic.Int64 // smoothed per-request service time estimate

	closeOnce sync.Once
}

// newBatcher wires the pipeline and starts the collector and one worker
// per scorer.
func newBatcher(s *Server, scorers []scorer) *batcher {
	b := &batcher{
		s:       s,
		scorers: scorers,
		queue:   make(chan *request, s.opt.queueDepth),
		batches: make(chan []*request, len(scorers)),
		stop:    make(chan struct{}),
		colDone: make(chan struct{}),
	}
	go b.collect()
	b.wg.Add(len(scorers))
	for _, sc := range scorers {
		go b.worker(sc)
	}
	return b
}

// depth returns the live queue length.
func (b *batcher) depth() int { return len(b.queue) }

// score admits one request and blocks until it completes. Shedding
// happens strictly before enqueue: a full queue (or a load-aware wait
// estimate beyond WithMaxWait) returns ErrQueueFull without the request
// ever entering the pipeline.
func (b *batcher) score(row, out []float32) error {
	met := &b.s.met
	if b.draining.Load() {
		met.drained.Inc()
		return ErrDraining
	}
	if mw := b.s.opt.maxWait; mw > 0 {
		if e := b.ewmaNs.Load(); e > 0 {
			est := time.Duration((int64(len(b.queue))+1) * e / int64(len(b.scorers)))
			if est > mw {
				met.shed.Inc()
				return ErrQueueFull
			}
		}
	}
	r := &request{row: row, out: out, start: time.Now(), done: make(chan struct{})}
	b.pending.Add(1)
	if b.draining.Load() {
		// Double-check after the increment: if the closer's drain wait is
		// already polling pending, the increment above is visible to it,
		// so backing out here keeps the count exact.
		b.pending.Add(-1)
		met.drained.Inc()
		return ErrDraining
	}
	select {
	case b.queue <- r:
		met.requests.Inc()
		met.queueDepth.Set(float64(len(b.queue)))
	default:
		b.pending.Add(-1)
		met.shed.Inc()
		return ErrQueueFull
	}
	<-r.done
	met.latencyUS.Observe(time.Since(r.start).Microseconds())
	return r.err
}

// collect coalesces queued requests into batches. The flush rules:
// batch-full (len == MaxBatch) dispatches immediately; otherwise a
// timer armed when the first request of a batch arrives dispatches
// whatever is pending once the batch window expires — so no request
// waits for batch-mates longer than the window.
func (b *batcher) collect() {
	defer close(b.colDone)
	met := &b.s.met
	maxBatch := b.s.opt.maxBatch
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	var pending []*request
	for {
		if len(pending) == 0 {
			select {
			case r := <-b.queue:
				met.queueDepth.Set(float64(len(b.queue)))
				pending = append(pending, r)
				timer.Reset(b.s.opt.window)
			case <-b.stop:
				b.failQueued()
				return
			}
			if len(pending) == maxBatch {
				b.stopTimer(timer)
				met.flushFull.Inc()
				if !b.dispatch(pending) {
					return
				}
				pending = nil
			}
			continue
		}
		select {
		case r := <-b.queue:
			met.queueDepth.Set(float64(len(b.queue)))
			pending = append(pending, r)
			if len(pending) == maxBatch {
				b.stopTimer(timer)
				met.flushFull.Inc()
				if !b.dispatch(pending) {
					return
				}
				pending = nil
			}
		case <-timer.C:
			met.flushTimer.Inc()
			if !b.dispatch(pending) {
				return
			}
			pending = nil
		case <-b.stop:
			// Forced stop (drain timeout): hand the coalesced batch to the
			// workers if possible, then fail whatever is still queued.
			b.stopTimer(timer)
			b.dispatch(pending)
			b.failQueued()
			return
		}
	}
}

// stopTimer quiesces the flush timer between batches, draining a
// concurrent fire so the next Reset starts clean.
func (b *batcher) stopTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}

// dispatch hands a batch to the worker pool, blocking for backpressure.
// It returns false when the stop signal preempted the handoff (the
// batch's requests are failed with ErrDraining and the collector must
// exit).
func (b *batcher) dispatch(batch []*request) bool {
	if len(batch) == 0 {
		return true
	}
	met := &b.s.met
	met.batches.Inc()
	met.batchRows.Observe(int64(len(batch)))
	select {
	case b.batches <- batch:
		return true
	case <-b.stop:
		b.fail(batch)
		b.failQueued()
		return false
	}
}

// failQueued drains the admission queue, failing every parked request
// with ErrDraining; only the forced-stop path reaches it with requests
// still queued.
func (b *batcher) failQueued() {
	for {
		select {
		case r := <-b.queue:
			b.fail([]*request{r})
		default:
			return
		}
	}
}

// fail completes requests with ErrDraining.
func (b *batcher) fail(batch []*request) {
	for _, r := range batch {
		r.err = ErrDraining
		close(r.done)
		b.pending.Add(-1)
	}
}

// worker scores batches until the batches channel closes.
func (b *batcher) worker(sc scorer) {
	defer b.wg.Done()
	for {
		batch, ok := <-b.batches
		if !ok {
			return
		}
		b.runBatch(sc, batch)
	}
}

// runBatch scores one batch and completes its requests: copy each
// logits row into the request's output buffer (after the optional
// softmax transform), signal completion, and fold the batch's
// per-request service time into the load estimate WithMaxWait sheds on.
func (b *batcher) runBatch(sc scorer, batch []*request) {
	start := time.Now()
	logits, err := sc.score(batch)
	if err == nil && b.s.opt.softmax {
		nn.SoftmaxInto(logits, logits)
	}
	for i, r := range batch {
		if err != nil {
			r.err = err
		} else {
			copy(r.out, logits.Row(i))
		}
		close(r.done)
		b.pending.Add(-1)
	}
	perReq := time.Since(start).Nanoseconds() / int64(len(batch))
	old := b.ewmaNs.Load()
	if old == 0 {
		b.ewmaNs.Store(perReq)
	} else {
		// 4:1 exponential smoothing in integer nanoseconds.
		b.ewmaNs.Store((old*4 + perReq) / 5)
	}
}

// close drains and stops the pipeline; see the batcher doc comment for
// the protocol. Requests still queued when the drain timeout expires
// fail with ErrDraining through their own Score calls.
func (b *batcher) close(timeout time.Duration) error {
	var errOut error
	b.closeOnce.Do(func() {
		b.draining.Store(true)
		deadline := time.Now().Add(timeout)
		for b.pending.Load() > 0 && time.Now().Before(deadline) {
			time.Sleep(200 * time.Microsecond)
		}
		close(b.stop)
		<-b.colDone
		close(b.batches)
		b.wg.Wait()
		for _, sc := range b.scorers {
			if err := sc.stop(); err != nil && errOut == nil {
				errOut = err
			}
		}
	})
	return errOut
}
