package serve

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/tensor"
)

// gateScorer is a controllable scorer for batcher tests: every score
// call parks on the gate until the test releases it (close the gate to
// release everything), records the batch sizes it served, and scores
// row i of a batch as [float32(i)] so tests can verify the row→output
// mapping survives coalescing.
type gateScorer struct {
	gate    chan struct{}
	started chan struct{} // one tick per score call, sent before parking

	mu      sync.Mutex
	batches []int
	out     *tensor.Matrix
}

func newGateScorer(maxBatch int) *gateScorer {
	return &gateScorer{
		gate:    make(chan struct{}),
		started: make(chan struct{}, 64),
		out:     tensor.NewMatrix(maxBatch, 1),
	}
}

func (g *gateScorer) score(batch []*request) (*tensor.Matrix, error) {
	g.started <- struct{}{}
	<-g.gate
	g.mu.Lock()
	g.batches = append(g.batches, len(batch))
	g.mu.Unlock()
	g.out.Rows = len(batch)
	for i := range batch {
		g.out.Row(i)[0] = float32(i)
	}
	return g.out, nil
}

func (g *gateScorer) stop() error { return nil }

func (g *gateScorer) batchSizes() []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]int(nil), g.batches...)
}

// newTestBatcher builds a pipeline around the given scorers without a
// model: batcher tests drive b.score directly, so no network is needed.
func newTestBatcher(o options, scorers ...scorer) (*Server, *obs.Registry) {
	reg := obs.NewRegistry()
	s := &Server{opt: o, met: newMetrics(reg)}
	s.b = newBatcher(s, scorers)
	return s, reg
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// scoreAsync launches one score call and returns its error channel.
func scoreAsync(s *Server) chan error {
	ch := make(chan error, 1)
	go func() { ch <- s.b.score([]float32{1}, make([]float32, 1)) }()
	return ch
}

// A full batch must flush immediately — the hour-long window proves the
// size trigger fired, not the timer.
func TestBatcherFlushOnBatchFull(t *testing.T) {
	sc := newGateScorer(4)
	close(sc.gate) // never block scoring
	s, reg := newTestBatcher(options{
		window: time.Hour, maxBatch: 4, queueDepth: 16, drainTimeout: time.Second,
	}, sc)
	var chans []chan error
	for i := 0; i < 4; i++ {
		chans = append(chans, scoreAsync(s))
	}
	for _, ch := range chans {
		if err := <-ch; err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter("serve.flush_full").Value(); got != 1 {
		t.Errorf("flush_full = %d, want 1", got)
	}
	if got := reg.Counter("serve.flush_deadline").Value(); got != 0 {
		t.Errorf("flush_deadline = %d, want 0", got)
	}
	if sizes := sc.batchSizes(); len(sizes) != 1 || sizes[0] != 4 {
		t.Errorf("batch sizes %v, want [4]", sizes)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// A partial batch must flush once the oldest request has waited the
// batch window, and ride out as one coalesced batch.
func TestBatcherFlushOnDeadline(t *testing.T) {
	sc := newGateScorer(32)
	close(sc.gate)
	s, reg := newTestBatcher(options{
		window: 2 * time.Millisecond, maxBatch: 32, queueDepth: 16, drainTimeout: time.Second,
	}, sc)
	var chans []chan error
	for i := 0; i < 3; i++ {
		chans = append(chans, scoreAsync(s))
	}
	for _, ch := range chans {
		if err := <-ch; err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter("serve.flush_full").Value(); got != 0 {
		t.Errorf("flush_full = %d, want 0", got)
	}
	if got := reg.Counter("serve.flush_deadline").Value(); got == 0 {
		t.Error("no deadline flush recorded")
	}
	if sizes := sc.batchSizes(); len(sizes) == 0 || sizes[0] > 3 {
		t.Errorf("batch sizes %v, want first ≤ 3", sizes)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// Admission control: a request arriving at a full queue is shed with
// ErrQueueFull synchronously, before anything is enqueued — and the
// requests already admitted still complete once the worker unblocks.
func TestBatcherShedsBeforeEnqueue(t *testing.T) {
	sc := newGateScorer(1)
	s, reg := newTestBatcher(options{
		window: time.Microsecond, maxBatch: 1, queueDepth: 1, drainTimeout: time.Second,
	}, sc)
	// Fill every stage: worker (parked on the gate), batches channel,
	// collector's dispatch, and the queue itself.
	r0 := scoreAsync(s)
	waitFor(t, "worker to start batch 0", func() bool { return len(sc.started) == 1 })
	r1 := scoreAsync(s)
	waitFor(t, "batch 1 to park in the batches channel", func() bool { return len(s.b.batches) == 1 })
	r2 := scoreAsync(s)
	waitFor(t, "collector to block on dispatch", func() bool { return s.b.depth() == 0 && s.b.pending.Load() == 3 })
	r3 := scoreAsync(s)
	waitFor(t, "request 3 to park in the queue", func() bool { return s.b.depth() == 1 })

	// The pipeline is saturated: the next request must shed immediately.
	start := time.Now()
	err := s.b.score([]float32{1}, make([]float32, 1))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("saturated pipeline returned %v, want ErrQueueFull", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("shed took %v, want immediate rejection", d)
	}
	if got := reg.Counter("serve.shed").Value(); got != 1 {
		t.Errorf("serve.shed = %d, want 1", got)
	}
	if got := reg.Counter("serve.requests").Value(); got != 4 {
		t.Errorf("serve.requests = %d, want 4 (shed request must not count)", got)
	}

	close(sc.gate)
	for i, ch := range []chan error{r0, r1, r2, r3} {
		if err := <-ch; err != nil {
			t.Fatalf("admitted request %d failed: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// WithMaxWait sheds on the load estimate: once the observed service time
// says queued work exceeds the bound, requests are rejected even though
// the queue has room.
func TestBatcherLoadAwareShedding(t *testing.T) {
	sc := newGateScorer(1)
	close(sc.gate)
	s, reg := newTestBatcher(options{
		window: time.Microsecond, maxBatch: 1, queueDepth: 64,
		maxWait: time.Nanosecond, drainTimeout: time.Second,
	}, sc)
	// First request trains the EWMA (no estimate yet, so it is admitted).
	if err := <-scoreAsync(s); err != nil {
		t.Fatalf("first request: %v", err)
	}
	waitFor(t, "service-time estimate", func() bool { return s.b.ewmaNs.Load() > 0 })
	// Any real service time exceeds a 1ns bound: shed on the estimate.
	if err := s.b.score([]float32{1}, make([]float32, 1)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("loaded server returned %v, want ErrQueueFull", err)
	}
	if got := reg.Counter("serve.shed").Value(); got != 1 {
		t.Errorf("serve.shed = %d, want 1", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// Graceful drain: Close stops admission immediately (ErrDraining) but
// in-flight requests complete normally before Close returns.
func TestBatcherGracefulDrain(t *testing.T) {
	sc := newGateScorer(2)
	s, _ := newTestBatcher(options{
		window: time.Microsecond, maxBatch: 2, queueDepth: 8, drainTimeout: 10 * time.Second,
	}, sc)
	r0 := scoreAsync(s)
	r1 := scoreAsync(s)
	waitFor(t, "worker to start the in-flight batch", func() bool { return len(sc.started) >= 1 })

	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	waitFor(t, "draining to flip", func() bool { return s.Draining() })

	// New admissions are refused while the drain holds the in-flight work.
	if err := s.b.score([]float32{1}, make([]float32, 1)); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining server returned %v, want ErrDraining", err)
	}
	select {
	case err := <-closed:
		t.Fatalf("Close returned %v with requests in flight", err)
	default:
	}

	close(sc.gate)
	for i, ch := range []chan error{r0, r1} {
		if err := <-ch; err != nil {
			t.Fatalf("in-flight request %d failed during drain: %v", i, err)
		}
	}
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Close is idempotent.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// Requests still parked past the drain timeout fail with ErrDraining
// through their own score calls, while requests the workers already
// hold complete normally.
func TestBatcherDrainTimeoutFailsQueued(t *testing.T) {
	sc := newGateScorer(1)
	s, _ := newTestBatcher(options{
		window: time.Microsecond, maxBatch: 1, queueDepth: 1, drainTimeout: 5 * time.Millisecond,
	}, sc)
	// Same saturation ladder as the shed test: r0 at the worker, r1 in
	// the batches channel, r2 at the collector's dispatch, r3 queued.
	r0 := scoreAsync(s)
	waitFor(t, "worker to start batch 0", func() bool { return len(sc.started) == 1 })
	r1 := scoreAsync(s)
	waitFor(t, "batch 1 to park in the batches channel", func() bool { return len(s.b.batches) == 1 })
	r2 := scoreAsync(s)
	waitFor(t, "collector to block on dispatch", func() bool { return s.b.depth() == 0 && s.b.pending.Load() == 3 })
	r3 := scoreAsync(s)
	waitFor(t, "request 3 to park in the queue", func() bool { return s.b.depth() == 1 })

	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	// The drain times out against the parked worker; the collector's
	// coalesced batch and the queued request must fail, not hang.
	for i, ch := range []chan error{r2, r3} {
		if err := <-ch; !errors.Is(err, ErrDraining) {
			t.Fatalf("parked request %d returned %v, want ErrDraining", i+2, err)
		}
	}
	close(sc.gate)
	for i, ch := range []chan error{r0, r1} {
		if err := <-ch; err != nil {
			t.Fatalf("dispatched request %d failed: %v", i, err)
		}
	}
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
}
