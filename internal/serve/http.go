package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// scoreRequest is the POST /score body: a batch of feature vectors.
type scoreRequest struct {
	Instances [][]float32 `json:"instances"`
}

// scoreResponse is the /score reply: one score vector per instance,
// plus the argmax class of each.
type scoreResponse struct {
	Scores  [][]float32 `json:"scores"`
	Classes []int       `json:"classes"`
}

// httpError is the JSON error body for non-200 replies.
type httpError struct {
	Error string `json:"error"`
}

// maxScoreBody bounds a /score request body (16 MiB) so a misbehaving
// client cannot balloon the decoder.
const maxScoreBody = 16 << 20

// Handler returns the server's HTTP API:
//
//	POST /score    {"instances":[[...features...],...]}
//	               → {"scores":[[...],...],"classes":[...]}
//	GET  /healthz  200 while serving, 503 while draining
//
// Each instance is admitted to the batcher independently, so one HTTP
// request's instances coalesce with concurrent traffic. Admission
// failures map to transport status codes: ErrQueueFull → 429 (retry
// later), ErrDraining → 503 (the server is shutting down).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/score", s.handleScore)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSONError(w, http.StatusMethodNotAllowed, "POST /score")
		return
	}
	var req scoreRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxScoreBody))
	if err := dec.Decode(&req); err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if len(req.Instances) == 0 {
		writeJSONError(w, http.StatusBadRequest, "no instances")
		return
	}
	in := s.topo.InputDim()
	for i, row := range req.Instances {
		if len(row) != in {
			writeJSONError(w, http.StatusBadRequest,
				fmt.Sprintf("instance %d has %d features, model wants %d", i, len(row), in))
			return
		}
	}
	resp := scoreResponse{
		Scores:  make([][]float32, len(req.Instances)),
		Classes: make([]int, len(req.Instances)),
	}
	out := s.topo.OutputDim()
	for i, row := range req.Instances {
		buf := make([]float32, out)
		if err := s.Score(row, buf); err != nil {
			writeJSONError(w, statusFor(err), err.Error())
			return
		}
		resp.Scores[i] = buf
		resp.Classes[i] = argmax(buf)
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(&resp); err != nil {
		// The status line is already written; nothing left to signal.
		_ = err
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSONError(w, http.StatusServiceUnavailable, ErrDraining.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write([]byte("{\"status\":\"ok\"}\n")); err != nil {
		_ = err
	}
}

// statusFor maps admission errors to HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

func writeJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(httpError{Error: msg}); err != nil {
		_ = err
	}
}

// argmax returns the index of the largest score.
func argmax(scores []float32) int {
	best := 0
	for j, v := range scores {
		if v > scores[best] {
			best = j
		}
	}
	return best
}
