package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/hf"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func postScore(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/score", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestHTTPRejectsMalformedRequests(t *testing.T) {
	ck, _ := testCheckpoint(t, 4, 6, 3)
	srv, err := New(ck, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"invalid json", "{nope", http.StatusBadRequest},
		{"no instances", `{"instances":[]}`, http.StatusBadRequest},
		{"wrong feature count", `{"instances":[[1,2,3]]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := postScore(t, ts.URL, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
		var e httpError
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q not a JSON error", tc.name, body)
		}
	}
	resp, err := http.Get(ts.URL + "/score")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /score status %d, want 405", resp.StatusCode)
	}
}

func TestHTTPHealthzTracksDrain(t *testing.T) {
	ck, _ := testCheckpoint(t, 4, 6, 3)
	srv, err := New(ck, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d, want 200", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status %d, want 503", resp.StatusCode)
	}
	// Scoring against a draining server maps ErrDraining to 503 too.
	r2, _ := postScore(t, ts.URL, `{"instances":[[1,2,3,4]]}`)
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /score status %d, want 503", r2.StatusCode)
	}
}

// The full production arc, end to end: train a tiny model with the HF
// optimizer, snapshot it through the checkpoint codec, serve it over
// HTTP, and require the served scores to be bit-identical to a direct
// forward pass of the reconstructed network — JSON's shortest-float32
// encoding round-trips exactly, so even the transport must not cost a
// bit.
func TestEndToEndTrainCheckpointServe(t *testing.T) {
	c := corpus.Generate(corpus.Config{
		Seed: 11, NumUtterances: 20, MeanSeconds: 0.3,
		FeatDim: 6, Context: 1, NumStates: 5, NoiseStd: 0.35,
	})
	train, held := c.Split(4)
	prob := core.Problem{
		Topo:           nn.NewTopology(c.InputDim(), 12, 5),
		Train:          train,
		Heldout:        held,
		Criterion:      core.CrossEntropy,
		SampleFraction: 1.0,
		Seed:           7,
	}
	obj, err := core.NewSerialObjective(prob)
	if err != nil {
		t.Fatal(err)
	}
	res := hf.Optimize(obj, hf.Config{
		MaxIterations: 2, Lambda0: 1,
		CG: hf.CGOpts{MaxIters: 10, MinIters: 3},
	})

	// Snapshot through the wire codec, as a deployment would.
	ck := &core.Checkpoint{
		Sizes:       prob.Topo.Sizes,
		Params:      obj.Params(),
		Criterion:   core.CrossEntropy,
		Iteration:   len(res.Iters),
		HeldOutLoss: res.FinalLoss,
	}
	var wire bytes.Buffer
	if err := core.WriteCheckpoint(&wire, ck); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.ReadCheckpoint(&wire)
	if err != nil {
		t.Fatal(err)
	}

	srv, err := New(loaded, WithMaxBatch(8), WithBatchWindow(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewSource(23))
	x := tensor.RandMatrix(rng, 5, c.InputDim(), 1)
	want := core.NetworkFromCheckpoint(loaded).Forward(x).Logits

	req := scoreRequest{Instances: make([][]float32, x.Rows)}
	for i := range req.Instances {
		req.Instances[i] = x.Row(i)
	}
	body, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	resp, raw := postScore(t, ts.URL, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/score status %d: %s", resp.StatusCode, raw)
	}
	var sr scoreResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Scores) != x.Rows || len(sr.Classes) != x.Rows {
		t.Fatalf("response has %d scores / %d classes, want %d", len(sr.Scores), len(sr.Classes), x.Rows)
	}
	for i := 0; i < x.Rows; i++ {
		wr := want.Row(i)
		if len(sr.Scores[i]) != len(wr) {
			t.Fatalf("row %d has %d scores, want %d", i, len(sr.Scores[i]), len(wr))
		}
		for j, w := range wr {
			if sr.Scores[i][j] != w {
				t.Fatalf("row %d score[%d] = %v, want %v (bitwise through HTTP)", i, j, sr.Scores[i][j], w)
			}
		}
		if sr.Classes[i] != argmax(wr) {
			t.Fatalf("row %d class %d, want %d", i, sr.Classes[i], argmax(wr))
		}
	}
}
