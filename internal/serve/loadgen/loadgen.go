// Package loadgen is a closed-loop load generator for the serving
// runtime: C concurrent clients each issue one request, wait for its
// completion, and immediately issue the next, so offered load tracks
// the server's actual capacity rather than an open-loop arrival rate.
// BenchmarkServe drives it to produce BENCH_serve.json; the serve tests
// use it to exercise the batcher under concurrency.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Target scores one feature vector into out. In-process runs pass
// (*serve.Server).Score directly; HTTPTarget adapts a running hfserve
// endpoint to the same shape.
type Target func(row, out []float32) error

// Config sizes one closed-loop run.
type Config struct {
	// Concurrency is the closed-loop client count (default 4).
	Concurrency int
	// Requests is the total request budget across all clients.
	Requests int
	// InputDim and OutputDim size the generated feature vectors and the
	// per-client output buffers.
	InputDim, OutputDim int
	// Seed feeds the per-client feature generators; two runs with the
	// same seed offer identical request streams.
	Seed int64
}

// Result aggregates one run. Latencies are measured around individual
// Target calls, so with the in-process target they include queueing,
// batching and scoring but not HTTP framing.
type Result struct {
	// Requests is the number of requests issued (OK + Errors).
	Requests int `json:"requests"`
	// OK counts requests that returned nil.
	OK int `json:"ok"`
	// Errors counts failed requests (shed, draining, transport).
	Errors int `json:"errors"`
	// Elapsed is the wall-clock span of the run.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Throughput is completed-OK requests per second.
	Throughput float64 `json:"req_per_sec"`
	// P50, P99 and Mean summarize per-request latency.
	P50  time.Duration `json:"p50_ns"`
	P99  time.Duration `json:"p99_ns"`
	Mean time.Duration `json:"mean_ns"`
}

// Run drives target with cfg.Concurrency closed-loop clients until the
// request budget is spent, then merges the per-client latency records.
func Run(cfg Config, target Target) Result {
	conc := cfg.Concurrency
	if conc <= 0 {
		conc = 4
	}
	if cfg.Requests <= 0 || cfg.InputDim <= 0 || cfg.OutputDim <= 0 {
		panic(fmt.Sprintf("loadgen: bad config %+v", cfg))
	}
	perClient := cfg.Requests / conc
	extra := cfg.Requests % conc

	type clientStats struct {
		lat  []time.Duration
		errs int
	}
	stats := make([]clientStats, conc)
	var wg sync.WaitGroup
	wg.Add(conc)
	start := time.Now()
	for c := 0; c < conc; c++ {
		n := perClient
		if c < extra {
			n++
		}
		go func(c, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(c)))
			row := make([]float32, cfg.InputDim)
			out := make([]float32, cfg.OutputDim)
			st := &stats[c]
			st.lat = make([]time.Duration, 0, n)
			for i := 0; i < n; i++ {
				for j := range row {
					row[j] = rng.Float32()
				}
				t0 := time.Now()
				err := target(row, out)
				st.lat = append(st.lat, time.Since(t0))
				if err != nil {
					st.errs++
				}
			}
		}(c, n)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	res := Result{Elapsed: elapsed}
	for c := range stats {
		all = append(all, stats[c].lat...)
		res.Errors += stats[c].errs
	}
	res.Requests = len(all)
	res.OK = res.Requests - res.Errors
	if len(all) == 0 {
		return res
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.P50 = percentile(all, 50)
	res.P99 = percentile(all, 99)
	var sum time.Duration
	for _, d := range all {
		sum += d
	}
	res.Mean = sum / time.Duration(len(all))
	if secs := elapsed.Seconds(); secs > 0 {
		res.Throughput = float64(res.OK) / secs
	}
	return res
}

// percentile returns the p-th percentile of sorted (nearest-rank).
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return sorted[idx]
}

// HTTPTarget adapts a running serve HTTP endpoint (POST base/score) to
// the Target shape: one instance per request, scores copied into out.
func HTTPTarget(client *http.Client, base string) Target {
	if client == nil {
		client = http.DefaultClient
	}
	url := base + "/score"
	return func(row, out []float32) error {
		body, err := json.Marshal(struct {
			Instances [][]float32 `json:"instances"`
		}{Instances: [][]float32{row}})
		if err != nil {
			return err
		}
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer func() {
			if cerr := resp.Body.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("loadgen: %s: HTTP %d", url, resp.StatusCode)
		}
		var parsed struct {
			Scores [][]float32 `json:"scores"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&parsed); err != nil {
			return err
		}
		if len(parsed.Scores) != 1 || len(parsed.Scores[0]) != len(out) {
			return fmt.Errorf("loadgen: %s: malformed scores in reply", url)
		}
		copy(out, parsed.Scores[0])
		return nil
	}
}
