package loadgen

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunAccountsEveryRequest(t *testing.T) {
	var calls, fails atomic.Int64
	target := func(row, out []float32) error {
		n := calls.Add(1)
		if len(row) != 5 || len(out) != 3 {
			t.Errorf("target got %d→%d dims, want 5→3", len(row), len(out))
		}
		if n%10 == 0 {
			fails.Add(1)
			return errors.New("injected failure")
		}
		return nil
	}
	res := Run(Config{Concurrency: 3, Requests: 50, InputDim: 5, OutputDim: 3, Seed: 1}, target)
	if res.Requests != 50 || int64(res.Requests) != calls.Load() {
		t.Fatalf("accounted %d requests, target saw %d, want 50", res.Requests, calls.Load())
	}
	if int64(res.Errors) != fails.Load() || res.OK != res.Requests-res.Errors {
		t.Fatalf("OK/Errors %d/%d inconsistent with %d injected failures", res.OK, res.Errors, fails.Load())
	}
	if res.P50 > res.P99 {
		t.Fatalf("P50 %v > P99 %v", res.P50, res.P99)
	}
	if res.Elapsed <= 0 || res.Throughput <= 0 || res.Mean <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := make([]time.Duration, 100)
	for i := range sorted {
		sorted[i] = time.Duration(i + 1)
	}
	if p := percentile(sorted, 50); p != 50 {
		t.Errorf("P50 of 1..100 = %d, want 50", p)
	}
	if p := percentile(sorted, 99); p != 99 {
		t.Errorf("P99 of 1..100 = %d, want 99", p)
	}
	if p := percentile(sorted[:1], 99); p != 1 {
		t.Errorf("P99 of a single sample = %d, want 1", p)
	}
}

func TestHTTPTargetRoundTrip(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Instances [][]float32 `json:"instances"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Instances) != 1 {
			http.Error(w, "bad body", http.StatusBadRequest)
			return
		}
		// Echo each feature doubled so the test can verify the copy-out.
		scores := make([]float32, len(req.Instances[0]))
		for j, v := range req.Instances[0] {
			scores[j] = 2 * v
		}
		fmt.Fprintf(w, `{"scores":[[%v,%v]],"classes":[0]}`, scores[0], scores[1])
	}))
	defer ts.Close()

	target := HTTPTarget(ts.Client(), ts.URL)
	out := make([]float32, 2)
	if err := target([]float32{1.5, -2}, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 3 || out[1] != -4 {
		t.Fatalf("scores %v, want [3 -4]", out)
	}
}

func TestHTTPTargetSurfacesStatusCodes(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()
	err := HTTPTarget(ts.Client(), ts.URL)(make([]float32, 2), make([]float32, 2))
	if err == nil {
		t.Fatal("429 reply reported as success")
	}
}
