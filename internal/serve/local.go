package serve

import (
	"repro/internal/nn"
	"repro/internal/tensor"
)

// localScorer runs batches through the network in-process over
// preallocated buffers: one maxBatch-row input matrix and one
// nn.InferBuffers per scoring worker, so the steady-state score path
// performs zero allocations (TestZeroAllocScore holds it to that).
type localScorer struct {
	net *nn.Network
	x   *tensor.Matrix // maxBatch × InputDim staging for the batch rows
	buf *nn.InferBuffers
}

func newLocalScorer(net *nn.Network, maxBatch int) *localScorer {
	return &localScorer{
		net: net,
		x:   tensor.NewMatrix(maxBatch, net.Topo.InputDim()),
		buf: net.Topo.NewInferBuffers(maxBatch),
	}
}

// score copies the batch's rows into the staging matrix and runs the
// shared inference forward pass. The returned logits alias the worker's
// buffers and are valid until the next call.
//
//lint:hotpath
func (sc *localScorer) score(batch []*request) (*tensor.Matrix, error) {
	x := sc.x
	x.Rows = len(batch)
	for i, r := range batch {
		copy(x.Row(i), r.row)
	}
	return sc.net.ForwardInto(sc.buf, x), nil
}

// stop implements scorer; the local path has nothing to release.
func (sc *localScorer) stop() error { return nil }
