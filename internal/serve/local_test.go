package serve

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// TestZeroAllocScore is the runtime allocation gate for the serving hot
// path (the escape gate is the compiler half): a worker's steady-state
// batch scoring — stage rows, forward pass, read logits — must not
// touch the allocator. Queue and completion plumbing allocate per
// request by design; the per-batch numeric work must not.
func TestZeroAllocScore(t *testing.T) {
	_, net := testCheckpoint(t, 10, 16, 8)
	sc := newLocalScorer(net, 16)
	rng := rand.New(rand.NewSource(13))
	batch := make([]*request, 16)
	for i := range batch {
		row := make([]float32, 10)
		for j := range row {
			row[j] = rng.Float32()
		}
		batch[i] = &request{row: row, out: make([]float32, 8)}
	}
	if _, err := sc.score(batch); err != nil { // warm up
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(20, func() {
		logits, err := sc.score(batch)
		if err != nil || logits.Rows != 16 {
			t.Fatal("score failed inside the allocation probe")
		}
	})
	if n != 0 {
		t.Errorf("localScorer.score: %.0f allocs per batch, want 0", n)
	}
	// The scored logits must still be right: row i of the batch maps to
	// logits row i through the staging copy.
	x := tensor.NewMatrix(16, 10)
	for i, r := range batch {
		copy(x.Row(i), r.row)
	}
	want := net.Forward(x).Logits
	got, err := sc.score(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		gr, wr := got.Row(i), want.Row(i)
		for j := range wr {
			if gr[j] != wr[j] {
				t.Fatalf("logits[%d][%d] = %v, want %v", i, j, gr[j], wr[j])
			}
		}
	}
}
