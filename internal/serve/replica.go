package serve

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Reserved tags for the serving plane. They live in the user tag space
// above the telemetry tags (9600/9601 — see internal/mpi), below the
// collective blocks at 1<<24, so serving traffic can share a fabric
// with a training run without aliasing either; TestServeTagPlan pins
// the values and the tagspace analyzer proves the uses collision-free.
const (
	// tagServeReq carries master→replica batch requests. Each scoring
	// worker is pinned to one replica rank and a replica serves one
	// batch at a time, so a single FIFO tag per direction suffices.
	tagServeReq = 9700
	// tagServeRes carries replica→master scored batches.
	tagServeRes = 9701
)

// Request opcodes: the first byte of every tagServeReq message, which
// ServeReplica's dispatch switch routes on.
const (
	svScore byte = 1 // score a batch: [rows u32][cols u32][rows*cols f32]
	svStop  byte = 2 // drain and exit the replica loop
)

// Reply opcodes: the first byte of every tagServeRes message, consumed
// by the master's replicaScorer (these flow replica→master, so they
// have no worker dispatch arm). The values are distinct from the
// request opcodes so a misrouted frame is diagnosable by opcode alone.
const (
	svOK  byte = 3 // scored logits: [rows u32][cols u32][rows*cols f32]
	svErr byte = 4 // replica-side failure: [error string]
)

// svName renders a serve opcode for diagnostics.
func svName(op byte) string {
	switch op {
	case svScore:
		return "score"
	case svStop:
		return "stop"
	case svOK:
		return "ok"
	case svErr:
		return "err"
	}
	return fmt.Sprintf("op(%d)", op)
}

// svHeader is [op u8][rows u32][cols u32].
const svHeader = 1 + 4 + 4

// appendBatch encodes a score request or reply: opcode, row/col header,
// then the matrix's live rows in row-major float32 bits.
func appendBatch(dst []byte, op byte, m *tensor.Matrix) []byte {
	dst = append(dst, op)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(m.Rows))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(m.Cols))
	dst = append(dst, hdr[:]...)
	var w [4]byte
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for _, v := range row {
			binary.LittleEndian.PutUint32(w[:], math.Float32bits(v))
			dst = append(dst, w[:]...)
		}
	}
	return dst
}

// decodeBatch decodes the row/col header and payload of a score
// request or reply into m, which must have capacity for the decoded
// rows (maxRows bounds a lying header before anything is copied).
func decodeBatch(body []byte, m *tensor.Matrix, maxRows, wantCols int) error {
	if len(body) < svHeader-1 {
		return fmt.Errorf("serve: batch frame %d bytes, want ≥ %d", len(body), svHeader-1)
	}
	rows := int(binary.LittleEndian.Uint32(body[0:]))
	cols := int(binary.LittleEndian.Uint32(body[4:]))
	if cols != wantCols {
		return fmt.Errorf("serve: batch has %d columns, model wants %d", cols, wantCols)
	}
	if rows < 0 || rows > maxRows {
		return fmt.Errorf("serve: batch claims %d rows, limit %d", rows, maxRows)
	}
	want := (svHeader - 1) + rows*cols*4
	if len(body) != want {
		return fmt.Errorf("serve: batch frame %d bytes, want %d for %d×%d", len(body), want, rows, cols)
	}
	m.Rows = rows
	off := svHeader - 1
	for i := 0; i < rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = math.Float32frombits(binary.LittleEndian.Uint32(body[off:]))
			off += 4
		}
	}
	return nil
}

// replicaScorer is the master-side half of the replica protocol: each
// scoring worker owns one, pinned to one replica rank, and ships its
// batches there instead of running the network locally. Request and
// reply buffers are preallocated for MaxBatch rows, so steady-state
// fan-out allocates only what mpi's transport copies.
type replicaScorer struct {
	comm   *mpi.Comm
	rank   int
	x      *tensor.Matrix // staging for the batch rows
	logits *tensor.Matrix // decoded reply
	wire   []byte         // reusable encode buffer
}

func newReplicaScorer(comm *mpi.Comm, rank int, topo nn.Topology, maxBatch int) *replicaScorer {
	return &replicaScorer{
		comm:   comm,
		rank:   rank,
		x:      tensor.NewMatrix(maxBatch, topo.InputDim()),
		logits: tensor.NewMatrix(maxBatch, topo.OutputDim()),
		wire:   make([]byte, 0, svHeader+maxBatch*topo.InputDim()*4),
	}
}

// score ships the batch to the pinned replica and decodes its reply.
func (sc *replicaScorer) score(batch []*request) (*tensor.Matrix, error) {
	x := sc.x
	x.Rows = len(batch)
	for i, r := range batch {
		copy(x.Row(i), r.row)
	}
	sc.wire = appendBatch(sc.wire[:0], svScore, x)
	if err := sc.comm.SendBytes(sc.rank, tagServeReq, sc.wire); err != nil {
		return nil, fmt.Errorf("serve: replica %d send: %w", sc.rank, err)
	}
	msg, err := sc.comm.RecvBytes(sc.rank, tagServeRes)
	if err != nil {
		return nil, fmt.Errorf("serve: replica %d recv: %w", sc.rank, err)
	}
	if len(msg.Data) == 0 {
		return nil, fmt.Errorf("serve: replica %d sent an empty reply", sc.rank)
	}
	op, body := msg.Data[0], msg.Data[1:]
	switch op {
	case svOK:
		if err := decodeBatch(body, sc.logits, len(batch), sc.logits.Cols); err != nil {
			return nil, fmt.Errorf("serve: replica %d reply: %w", sc.rank, err)
		}
		if sc.logits.Rows != len(batch) {
			return nil, fmt.Errorf("serve: replica %d scored %d rows, sent %d", sc.rank, sc.logits.Rows, len(batch))
		}
		return sc.logits, nil
	case svErr:
		return nil, fmt.Errorf("serve: replica %d: %s", sc.rank, string(body))
	}
	return nil, fmt.Errorf("serve: replica %d sent unexpected %s reply", sc.rank, svName(op))
}

// stop tells the pinned replica to exit its ServeReplica loop; called
// once per replica during Close's drain.
func (sc *replicaScorer) stop() error {
	if err := sc.comm.SendBytes(sc.rank, tagServeReq, []byte{svStop}); err != nil {
		return fmt.Errorf("serve: replica %d stop: %w", sc.rank, err)
	}
	return nil
}

// replica is the worker-side half: the reconstructed network plus
// preallocated buffers for one batch at a time.
type replica struct {
	comm *mpi.Comm
	net  *nn.Network
	x    *tensor.Matrix
	buf  *nn.InferBuffers
	wire []byte
}

// ServeReplica runs the replica loop on a non-zero rank of the
// WithReplicas communicator: receive a batch from the master, run the
// shared forward pass, ship the logits back; returns nil when the
// master's Close sends the stop opcode. The master applies any softmax
// transform after the fan-in, so replicas always ship raw logits and
// the replicated path stays bit-identical to the local one.
func (s *Server) ServeReplica() error {
	r := s.rep
	if r == nil {
		return fmt.Errorf("serve: ServeReplica on the master rank (rank 0 serves the front end)")
	}
	for {
		msg, err := r.comm.RecvBytes(0, tagServeReq)
		if err != nil {
			return fmt.Errorf("serve: replica recv: %w", err)
		}
		if len(msg.Data) == 0 {
			return fmt.Errorf("serve: replica received an empty frame")
		}
		op, body := msg.Data[0], msg.Data[1:]
		switch op {
		case svStop:
			return nil
		case svScore:
			r.wire = r.wire[:0]
			if err := decodeBatch(body, r.x, r.buf.MaxBatch(), r.x.Cols); err != nil {
				r.wire = append(append(r.wire, svErr), err.Error()...)
			} else {
				logits := r.net.ForwardInto(r.buf, r.x)
				r.wire = appendBatch(r.wire, svOK, logits)
			}
			if err := r.comm.SendBytes(0, tagServeRes, r.wire); err != nil {
				return fmt.Errorf("serve: replica send: %w", err)
			}
		default:
			return fmt.Errorf("serve: replica received unexpected %s", svName(op))
		}
	}
}
