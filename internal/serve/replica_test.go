package serve

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/tensor"
)

// TestServeTagPlan pins the serving plane's reserved tags and opcodes:
// the tag values are part of the fabric-sharing contract with the
// telemetry plane (9600/9601) and the collective blocks at 1<<24, and
// the opcode values must stay distinct across the request/reply const
// blocks so a misrouted frame is diagnosable.
func TestServeTagPlan(t *testing.T) {
	if tagServeReq != 9700 || tagServeRes != 9701 {
		t.Fatalf("serve tags (%d, %d), want (9700, 9701)", tagServeReq, tagServeRes)
	}
	if tagServeReq <= mpi.TagTelemetry || tagServeRes >= 1<<24 {
		t.Fatal("serve tags outside the reserved window (telemetry, collective-base)")
	}
	ops := map[byte]string{svScore: "score", svStop: "stop", svOK: "ok", svErr: "err"}
	if len(ops) != 4 {
		t.Fatal("serve opcodes collide")
	}
	for op, name := range ops {
		if svName(op) != name {
			t.Errorf("svName(%d) = %q, want %q", op, svName(op), name)
		}
	}
	if !strings.HasPrefix(svName(99), "op(") {
		t.Errorf("unknown opcode renders %q", svName(99))
	}
}

func TestBatchCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := tensor.RandMatrix(rng, 5, 7, 1)
	wire := appendBatch(nil, svScore, m)
	if wire[0] != svScore {
		t.Fatalf("opcode byte %d, want %d", wire[0], svScore)
	}
	got := tensor.NewMatrix(8, 7)
	if err := decodeBatch(wire[1:], got, 8, 7); err != nil {
		t.Fatal(err)
	}
	if got.Rows != 5 {
		t.Fatalf("decoded %d rows, want 5", got.Rows)
	}
	for i := 0; i < 5; i++ {
		gr, wr := got.Row(i), m.Row(i)
		for j := range wr {
			if gr[j] != wr[j] {
				t.Fatalf("round trip diverges at [%d][%d]: %v vs %v", i, j, gr[j], wr[j])
			}
		}
	}
}

// Hostile frames must be rejected by the header checks before anything
// is copied into the preallocated buffers.
func TestBatchCodecRejectsHostileFrames(t *testing.T) {
	m := tensor.NewMatrix(4, 3)
	good := appendBatch(nil, svScore, m)[1:]
	cases := []struct {
		name string
		body []byte
	}{
		{"truncated header", good[:5]},
		{"wrong columns", appendBatch(nil, svScore, tensor.NewMatrix(4, 2))[1:]},
		{"rows beyond capacity", appendBatch(nil, svScore, tensor.NewMatrix(5, 3))[1:]},
		{"payload shorter than header claims", good[:len(good)-4]},
		{"payload longer than header claims", append(append([]byte(nil), good...), 0, 0, 0, 0)},
	}
	for _, tc := range cases {
		dst := tensor.NewMatrix(4, 3)
		if err := decodeBatch(tc.body, dst, 4, 3); err == nil {
			t.Errorf("%s: decodeBatch accepted the frame", tc.name)
		}
	}
}

// Replica sharding end to end over the in-process fabric: rank 0 fans
// batches to two replica ranks, and every score is still bit-identical
// to a local forward pass — the wire hop must not perturb the floats.
func TestReplicaShardingMatchesLocal(t *testing.T) {
	ck, net := testCheckpoint(t, 6, 10, 4)
	fabric := mpi.NewInprocFabric(3)
	defer fabric.Close()

	repErrs := make(chan error, 2)
	for rank := 1; rank < 3; rank++ {
		comm := mpi.NewComm(fabric.Transport(rank))
		rs, err := New(ck, WithReplicas(comm), WithMaxBatch(8))
		if err != nil {
			t.Fatal(err)
		}
		if err := rs.Score(make([]float32, 6), make([]float32, 4)); err == nil {
			t.Fatal("Score on a replica rank must fail")
		}
		go func() { repErrs <- rs.ServeReplica() }()
	}

	master, err := New(ck,
		WithReplicas(mpi.NewComm(fabric.Transport(0))),
		WithMaxBatch(8), WithBatchWindow(300*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := master.ServeReplica(); err == nil {
		t.Fatal("ServeReplica on the master rank must fail")
	}

	rng := rand.New(rand.NewSource(17))
	x := tensor.RandMatrix(rng, 12, 6, 1)
	want := net.Forward(x).Logits
	done := make(chan error, x.Rows)
	for i := 0; i < x.Rows; i++ {
		go func(i int) {
			out := make([]float32, 4)
			if err := master.Score(x.Row(i), out); err != nil {
				done <- err
				return
			}
			for j, w := range want.Row(i) {
				if out[j] != w {
					t.Errorf("row %d score[%d] = %v, want %v (bitwise)", i, j, out[j], w)
				}
			}
			done <- nil
		}(i)
	}
	for i := 0; i < x.Rows; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}

	// Close drains the master and stops both replica loops cleanly.
	if err := master.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := <-repErrs; err != nil {
			t.Fatalf("ServeReplica: %v", err)
		}
	}
}
