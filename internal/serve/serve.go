// Package serve is the inference serving runtime: it loads a trained
// core.Checkpoint, reconstructs the internal/nn network, and scores
// feature vectors behind a request-coalescing micro-batcher with
// admission control — the checkpoint-to-traffic path of the production
// arc (ROADMAP item 1).
//
// The public surface is one options-based constructor, mirroring
// core.NewSession:
//
//	srv, err := serve.New(ck,
//		serve.WithBatchWindow(2*time.Millisecond),
//		serve.WithMaxBatch(32),
//		serve.WithQueueDepth(256),
//		serve.WithWorkers(2),
//		serve.WithObserver(ob),
//	)
//	defer srv.Close()
//	http.ListenAndServe(addr, srv.Handler())
//
// Requests enter a bounded queue (full queue → immediate ErrQueueFull,
// surfaced as HTTP 429, before anything is enqueued); a collector
// goroutine coalesces them into batches, flushing when a batch fills or
// when the oldest queued request has waited the batch window; scoring
// workers run batched forward passes over preallocated nn.InferBuffers
// (zero allocations on the score path). Close drains: admission stops
// (ErrDraining → 503), in-flight requests complete, then the pipeline
// shuts down.
//
// With WithReplicas the same constructor turns the server into the
// master of a replica group over the internal/mpi fabric: scoring
// workers fan batches out to replica ranks on the reserved serve tags
// instead of running the network locally (replica.go).
package serve

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// Defaults for Option zero values.
const (
	// DefaultBatchWindow is the micro-batching latency budget: a queued
	// request is never held longer than this waiting for batch-mates.
	DefaultBatchWindow = 2 * time.Millisecond
	// DefaultMaxBatch is the batch-full flush threshold.
	DefaultMaxBatch = 32
	// DefaultQueueDepth bounds the admission queue.
	DefaultQueueDepth = 256
	// DefaultWorkers is the scoring-worker count (per-worker buffers are
	// preallocated, so workers cost memory proportional to MaxBatch).
	DefaultWorkers = 2
	// DefaultDrainTimeout bounds Close's graceful drain; requests still
	// queued past it fail with ErrDraining.
	DefaultDrainTimeout = 5 * time.Second
)

// Admission errors. The HTTP handler maps ErrQueueFull to 429 and
// ErrDraining to 503.
var (
	// ErrQueueFull is returned (before anything is enqueued) when the
	// admission queue is full or the load-aware wait estimate exceeds
	// the configured bound — shed now, fast, rather than time out later.
	ErrQueueFull = errors.New("serve: queue full, request shed")
	// ErrDraining is returned once Close has begun: the server finishes
	// in-flight work but admits nothing new.
	ErrDraining = errors.New("serve: server draining")
)

// options accumulates Option state before validation.
type options struct {
	window       time.Duration
	maxBatch     int
	queueDepth   int
	workers      int
	workersSet   bool
	maxWait      time.Duration
	drainTimeout time.Duration
	softmax      bool
	replicas     *mpi.Comm
	ob           *obs.Observer
}

// Option configures a Server.
type Option func(*options)

// WithBatchWindow sets the micro-batching latency budget: the longest a
// queued request waits for batch-mates before the pending batch is
// flushed (default 2ms). Lower trades throughput for latency.
func WithBatchWindow(d time.Duration) Option {
	return func(o *options) { o.window = d }
}

// WithMaxBatch sets the batch-full flush threshold (default 32): a
// pending batch reaching this many requests is dispatched immediately.
func WithMaxBatch(n int) Option {
	return func(o *options) { o.maxBatch = n }
}

// WithQueueDepth bounds the admission queue (default 256). A request
// arriving at a full queue is shed with ErrQueueFull before enqueue.
func WithQueueDepth(n int) Option {
	return func(o *options) { o.queueDepth = n }
}

// WithWorkers sets the scoring-worker count (default 2; with
// WithReplicas the worker count is fixed at the replica count and this
// option is rejected).
func WithWorkers(n int) Option {
	return func(o *options) { o.workers, o.workersSet = n, true }
}

// WithMaxWait arms load-aware admission control: beyond the queue bound,
// a request is shed when queued-work × the observed per-request service
// time estimates a wait longer than d. Zero (the default) disables the
// estimate and sheds on queue depth alone.
func WithMaxWait(d time.Duration) Option {
	return func(o *options) { o.maxWait = d }
}

// WithDrainTimeout bounds Close's graceful drain (default 5s). Requests
// still queued when it expires fail with ErrDraining.
func WithDrainTimeout(d time.Duration) Option {
	return func(o *options) { o.drainTimeout = d }
}

// WithSoftmax makes the server return row-wise softmax probabilities
// instead of raw logits.
func WithSoftmax() Option {
	return func(o *options) { o.softmax = true }
}

// WithReplicas shards scoring over the ranks of comm: rank 0 runs the
// front end (queue, batcher, HTTP) and fans batches out to ranks
// 1..Size-1, each of which must be running ServeReplica over the same
// checkpoint. One scoring worker is pinned per replica rank, so the
// replica count fixes the worker count.
func WithReplicas(comm *mpi.Comm) Option {
	return func(o *options) { o.replicas = comm }
}

// WithObserver wires the server's metrics (request/shed counters, queue
// depth, batch-size and latency histograms) into ob's registry, from
// which the telemetry plane's /metrics endpoint exposes them.
func WithObserver(ob *obs.Observer) Option {
	return func(o *options) { o.ob = ob }
}

// metrics bundles the server's instruments. All obs instruments are
// nil-safe, so a Server without WithObserver records into no-ops.
type metrics struct {
	requests   *obs.Counter   // admitted requests
	shed       *obs.Counter   // queue-full/load-shed rejections
	drained    *obs.Counter   // rejections while draining
	batches    *obs.Counter   // dispatched batches
	flushFull  *obs.Counter   // batch-full flushes
	flushTimer *obs.Counter   // deadline flushes
	queueDepth *obs.Gauge     // live queue length
	batchRows  *obs.Histogram // rows per dispatched batch
	latencyUS  *obs.Histogram // enqueue→completion latency, µs
}

func newMetrics(reg *obs.Registry) metrics {
	return metrics{
		requests:   reg.Counter("serve.requests"),
		shed:       reg.Counter("serve.shed"),
		drained:    reg.Counter("serve.rejected_draining"),
		batches:    reg.Counter("serve.batches"),
		flushFull:  reg.Counter("serve.flush_full"),
		flushTimer: reg.Counter("serve.flush_deadline"),
		queueDepth: reg.Gauge("serve.queue_depth"),
		batchRows:  reg.Histogram("serve.batch_rows"),
		latencyUS:  reg.Histogram("serve.latency_us"),
	}
}

// Server scores feature vectors against one checkpointed network. Safe
// for concurrent use; create with New, stop with Close.
type Server struct {
	net  *nn.Network
	topo nn.Topology
	opt  options
	met  metrics

	b   *batcher // front-end pipeline; nil on replica ranks
	rep *replica // replica-rank state; nil on the front end
}

// New builds a serving runtime for the trained model in ck. The
// checkpoint is validated against its own topology (as ReadCheckpoint
// does) before the network is reconstructed.
func New(ck *core.Checkpoint, opts ...Option) (*Server, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	if o.window <= 0 {
		o.window = DefaultBatchWindow
	}
	if o.maxBatch <= 0 {
		o.maxBatch = DefaultMaxBatch
	}
	if o.queueDepth <= 0 {
		o.queueDepth = DefaultQueueDepth
	}
	if o.drainTimeout <= 0 {
		o.drainTimeout = DefaultDrainTimeout
	}
	if o.replicas != nil {
		if o.workersSet {
			return nil, errors.New("serve: WithWorkers is incompatible with WithReplicas (one worker per replica rank)")
		}
		if o.replicas.Size() < 2 {
			return nil, fmt.Errorf("serve: WithReplicas needs ≥2 ranks, got %d", o.replicas.Size())
		}
		o.workers = o.replicas.Size() - 1
	} else if !o.workersSet {
		o.workers = DefaultWorkers
	}
	if o.workers <= 0 {
		return nil, fmt.Errorf("serve: %d workers, want > 0", o.workers)
	}
	if ck == nil {
		return nil, errors.New("serve: nil checkpoint")
	}
	if err := ck.Validate(); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	topo := nn.NewTopology(ck.Sizes...)

	s := &Server{
		net:  core.NetworkFromCheckpoint(ck),
		topo: topo,
		opt:  o,
		met:  newMetrics(o.ob.Registry()),
	}
	if o.replicas != nil && o.replicas.Rank() != 0 {
		// Replica rank: no front end — just the network and one batch's
		// worth of buffers for the ServeReplica loop.
		s.rep = &replica{
			comm: o.replicas,
			net:  s.net,
			x:    tensor.NewMatrix(o.maxBatch, topo.InputDim()),
			buf:  topo.NewInferBuffers(o.maxBatch),
			wire: make([]byte, 0, svHeader+o.maxBatch*topo.OutputDim()*4),
		}
		return s, nil
	}
	scorers := make([]scorer, o.workers)
	for i := range scorers {
		if o.replicas != nil {
			scorers[i] = newReplicaScorer(o.replicas, i+1, topo, o.maxBatch)
		} else {
			scorers[i] = newLocalScorer(s.net, o.maxBatch)
		}
	}
	s.b = newBatcher(s, scorers)
	return s, nil
}

// InputDim returns the model's feature dimension.
func (s *Server) InputDim() int { return s.topo.InputDim() }

// OutputDim returns the model's score dimension (class count).
func (s *Server) OutputDim() int { return s.topo.OutputDim() }

// Score runs one feature vector through the batcher and writes the
// model's scores (logits, or probabilities under WithSoftmax) into out.
// It blocks until the request is scored, shed (ErrQueueFull) or refused
// (ErrDraining); concurrent callers coalesce into shared batches.
func (s *Server) Score(row, out []float32) error {
	if len(row) != s.topo.InputDim() {
		return fmt.Errorf("serve: instance has %d features, model wants %d", len(row), s.topo.InputDim())
	}
	if len(out) != s.topo.OutputDim() {
		return fmt.Errorf("serve: output buffer has %d slots, model emits %d", len(out), s.topo.OutputDim())
	}
	if s.b == nil {
		return errors.New("serve: Score on a replica rank (only rank 0 admits requests)")
	}
	return s.b.score(row, out)
}

// QueueDepth returns the number of requests currently queued.
func (s *Server) QueueDepth() int {
	if s.b == nil {
		return 0
	}
	return s.b.depth()
}

// Draining reports whether Close has begun.
func (s *Server) Draining() bool {
	if s.b == nil {
		return false
	}
	return s.b.draining.Load()
}

// Close drains the server: admission stops immediately, queued and
// in-flight requests complete (bounded by the drain timeout), then the
// collector and workers exit and, in replica mode, every replica rank
// is told to shut down. Close is idempotent; it returns ErrDraining
// wrapped per abandoned request only through those requests' own Score
// calls, never from Close itself.
func (s *Server) Close() error {
	if s.b == nil {
		// Replica ranks shut down when the master's Close sends the stop
		// opcode to their ServeReplica loop.
		return nil
	}
	return s.b.close(s.opt.drainTimeout)
}
