package serve

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// testCheckpoint builds a checkpoint around a Glorot-initialized network
// with the given topology, returning both so tests can compare served
// scores against direct forward passes.
func testCheckpoint(t *testing.T, sizes ...int) (*core.Checkpoint, *nn.Network) {
	t.Helper()
	net := nn.New(nn.NewTopology(sizes...))
	net.InitGlorot(rand.New(rand.NewSource(41)))
	ck := &core.Checkpoint{
		Sizes:     append([]int(nil), sizes...),
		Params:    net.Params.Clone(),
		Criterion: core.CrossEntropy,
	}
	return ck, net
}

func TestNewRejectsBadConfigs(t *testing.T) {
	ck, _ := testCheckpoint(t, 4, 6, 3)
	bad := &core.Checkpoint{Sizes: []int{4, 6, 3}, Params: make(tensor.Vector, 5)}
	fabric := mpi.NewInprocFabric(2)
	defer fabric.Close()
	comm := mpi.NewComm(fabric.Transport(0))
	solo := mpi.NewComm(mpi.NewInprocFabric(1).Transport(0))
	cases := []struct {
		name string
		ck   *core.Checkpoint
		opts []Option
	}{
		{"nil checkpoint", nil, nil},
		{"invalid checkpoint", bad, nil},
		{"workers with replicas", ck, []Option{WithReplicas(comm), WithWorkers(3)}},
		{"replica group too small", ck, []Option{WithReplicas(solo)}},
		{"non-positive workers", ck, []Option{WithWorkers(-1)}},
	}
	for _, tc := range cases {
		if _, err := New(tc.ck, tc.opts...); err == nil {
			t.Errorf("%s: New accepted the config", tc.name)
		}
	}
}

// The serving contract: a scored row agrees bit-for-bit with a direct
// forward pass of the reconstructed network — batching, buffer reuse and
// the queue hop must not perturb a single bit.
func TestScoreMatchesForward(t *testing.T) {
	ck, net := testCheckpoint(t, 6, 10, 4)
	srv, err := New(ck, WithWorkers(1), WithBatchWindow(500*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.InputDim() != 6 || srv.OutputDim() != 4 {
		t.Fatalf("model dims %d→%d, want 6→4", srv.InputDim(), srv.OutputDim())
	}
	rng := rand.New(rand.NewSource(5))
	x := tensor.RandMatrix(rng, 8, 6, 1)
	want := net.Forward(x).Logits
	out := make([]float32, 4)
	for i := 0; i < x.Rows; i++ {
		if err := srv.Score(x.Row(i), out); err != nil {
			t.Fatalf("Score row %d: %v", i, err)
		}
		for j, w := range want.Row(i) {
			if out[j] != w {
				t.Fatalf("row %d score[%d] = %v, want %v (bitwise)", i, j, out[j], w)
			}
		}
	}
}

// WithSoftmax must return the same probabilities SoftmaxInto produces
// over the raw logits.
func TestScoreSoftmax(t *testing.T) {
	ck, net := testCheckpoint(t, 5, 8, 3)
	srv, err := New(ck, WithSoftmax(), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rng := rand.New(rand.NewSource(6))
	x := tensor.RandMatrix(rng, 1, 5, 1)
	want := net.Forward(x).Logits
	nn.SoftmaxInto(want, want)
	out := make([]float32, 3)
	if err := srv.Score(x.Row(0), out); err != nil {
		t.Fatal(err)
	}
	for j, w := range want.Row(0) {
		if out[j] != w {
			t.Fatalf("probability[%d] = %v, want %v", j, out[j], w)
		}
	}
}

func TestScoreValidatesDims(t *testing.T) {
	ck, _ := testCheckpoint(t, 4, 6, 3)
	srv, err := New(ck, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Score(make([]float32, 3), make([]float32, 3)); err == nil {
		t.Error("short feature row accepted")
	}
	if err := srv.Score(make([]float32, 4), make([]float32, 2)); err == nil {
		t.Error("short output buffer accepted")
	}
}

// Concurrent clients hammering one server (the -race half of the batcher
// contract): every response must still be bit-identical to the direct
// forward pass of its own row, and the metrics must balance.
func TestConcurrentClientsScoreCorrectly(t *testing.T) {
	ck, net := testCheckpoint(t, 6, 12, 5)
	ob := &obs.Observer{Metrics: obs.NewRegistry()}
	srv, err := New(ck,
		WithWorkers(2), WithMaxBatch(8), WithQueueDepth(64),
		WithBatchWindow(200*time.Microsecond), WithObserver(ob))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const rows = 24
	rng := rand.New(rand.NewSource(12))
	x := tensor.RandMatrix(rng, rows, 6, 1)
	want := net.Forward(x).Logits

	const clients, perClient = 8, 30
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			out := make([]float32, 5)
			crng := rand.New(rand.NewSource(int64(100 + c)))
			for i := 0; i < perClient; i++ {
				row := crng.Intn(rows)
				if err := srv.Score(x.Row(row), out); err != nil {
					errs <- err
					return
				}
				for j, w := range want.Row(row) {
					if out[j] != w {
						errs <- errors.New("score mismatch under concurrency")
						return
					}
				}
			}
			errs <- nil
		}(c)
	}
	for c := 0; c < clients; c++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	reg := ob.Registry()
	if got := reg.Counter("serve.requests").Value(); got != clients*perClient {
		t.Errorf("serve.requests = %d, want %d", got, clients*perClient)
	}
	if reg.Histogram("serve.latency_us").Count() != clients*perClient {
		t.Error("latency histogram misses requests")
	}
	if reg.Counter("serve.batches").Value() == 0 {
		t.Error("no batches recorded")
	}
}
