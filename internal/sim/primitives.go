package sim

import "fmt"

// Message is a simulated network payload descriptor.
type Message struct {
	Src   int
	Tag   int
	Bytes int
	// Payload carries optional metadata for the receiving program.
	Payload interface{}
}

// Mailbox is a FIFO message queue with blocking receive, the endpoint of
// simulated point-to-point communication.
type Mailbox struct {
	eng    *Engine
	queue  []Message
	waiter *Process
}

// NewMailbox creates a mailbox on the engine.
func NewMailbox(e *Engine) *Mailbox { return &Mailbox{eng: e} }

// Put delivers a message at the current virtual time, waking a blocked
// receiver.
func (m *Mailbox) Put(msg Message) {
	m.queue = append(m.queue, msg)
	if m.waiter != nil {
		w := m.waiter
		m.waiter = nil
		m.eng.Wake(m.eng.now, w)
	}
}

// PutAt delivers a message at absolute virtual time t.
func (m *Mailbox) PutAt(t float64, msg Message) {
	m.eng.At(t, func() { m.Put(msg) })
}

// Get blocks the calling process until a message is available and returns
// the oldest one.
func (m *Mailbox) Get(p *Process) Message {
	for len(m.queue) == 0 {
		if m.waiter != nil {
			panic("sim: two processes blocked on one mailbox")
		}
		m.waiter = p
		p.Suspend()
	}
	msg := m.queue[0]
	m.queue = m.queue[1:]
	return msg
}

// Resource is a FIFO-serialized facility (e.g. a network link): requests
// occupy it back to back. It supports reservations made on behalf of
// in-flight messages, not only by running processes.
type Resource struct {
	Name   string
	freeAt float64
	// Busy accumulates total occupied seconds, for utilization reports.
	Busy float64
}

// NewResource returns an idle resource.
func NewResource(name string) *Resource { return &Resource{Name: name} }

// ReserveAt books the resource for dur seconds starting no earlier than t
// and returns the completion time.
func (r *Resource) ReserveAt(t, dur float64) float64 {
	if dur < 0 {
		panic(fmt.Sprintf("sim: negative reservation %v on %s", dur, r.Name))
	}
	start := t
	if r.freeAt > start {
		start = r.freeAt
	}
	r.freeAt = start + dur
	r.Busy += dur
	return r.freeAt
}

// AcquireFor blocks process p while it occupies the resource for dur
// seconds (queued FIFO behind earlier reservations).
func (r *Resource) AcquireFor(p *Process, dur float64) {
	end := r.ReserveAt(p.eng.now, dur)
	p.WaitUntil(end)
}

// Gate synchronizes a fixed set of processes, the building block of the
// simulated MPI collectives: all participants arrive, then all are
// released at max(arrival) + hold, the straggler-gated timing of a
// bulk-synchronous step.
type Gate struct {
	eng     *Engine
	parties int
	cycle   *gateCycle
	// hold computes the collective's duration from the latest arrival.
	hold func() float64
}

// gateCycle records one pass through the gate so late-woken waiters can
// account their time even after the gate moved on to the next cycle.
type gateCycle struct {
	arrived int
	maxT    float64
	release float64
	holdDur float64
	waiting []*Process
}

// NewGate creates a gate for the given number of parties. hold returns
// the time the collective occupies after the last arrival (e.g. the
// broadcast transfer time); it is evaluated once per cycle.
func NewGate(e *Engine, parties int, hold func() float64) *Gate {
	if parties <= 0 {
		panic("sim: gate needs ≥1 party")
	}
	return &Gate{eng: e, parties: parties, hold: hold}
}

// Wait enters the gate and blocks until all parties have arrived plus the
// hold time. It returns (syncWait, holdTime): time spent waiting for
// stragglers and time spent in the transfer itself. The gate resets for
// reuse after each full cycle.
func (g *Gate) Wait(p *Process) (syncWait, holdTime float64) {
	if g.cycle == nil {
		g.cycle = &gateCycle{}
	}
	c := g.cycle
	arrival := g.eng.now
	if arrival > c.maxT {
		c.maxT = arrival
	}
	c.arrived++
	if c.arrived < g.parties {
		c.waiting = append(c.waiting, p)
		p.Suspend()
		return (c.release - arrival) - c.holdDur, c.holdDur
	}
	// Last arriver: compute release time, wake everyone, open a new cycle.
	c.holdDur = g.hold()
	c.release = c.maxT + c.holdDur
	for _, w := range c.waiting {
		g.eng.Wake(c.release, w)
	}
	g.cycle = &gateCycle{}
	p.WaitUntil(c.release)
	return c.maxT - arrival, c.holdDur
}
