// Package sim is a deterministic process-oriented discrete-event
// simulation engine. It underpins the Blue Gene/Q machine model used to
// replay the paper's training runs at scales (1024-8192 MPI ranks) that
// cannot be executed directly.
//
// Processes are goroutines that advance a shared virtual clock through
// blocking primitives (Delay, Suspend, mailbox Get, resource reservation).
// Exactly one goroutine — either the engine or a single process — runs at
// any moment, handed off through unbuffered channels, so simulations are
// fully deterministic: same inputs, same event order, same results.
package sim

import (
	"container/heap"
	"fmt"
)

// event is a scheduled callback.
type event struct {
	time float64
	seq  uint64 // FIFO tiebreak for simultaneous events
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time < h[j].time {
		return true
	}
	if h[j].time < h[i].time {
		return false
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine owns the virtual clock and event queue.
type Engine struct {
	now     float64
	seq     uint64
	events  eventHeap
	yield   chan struct{} // process → engine control handoff
	blocked int           // processes suspended without a scheduled wake
	running bool
}

// NewEngine returns an empty engine at time 0.
func NewEngine() *Engine {
	return &Engine{yield: make(chan struct{})}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn to run at absolute virtual time t (clamped to now).
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{time: t, seq: e.seq, fn: fn})
}

// Process is a simulated thread of control. Its methods must only be
// called from within the process's own function.
type Process struct {
	eng    *Engine
	resume chan struct{}
	// Name labels the process in diagnostics.
	Name string
}

// Spawn creates a process that starts executing fn at the current virtual
// time.
func (e *Engine) Spawn(name string, fn func(p *Process)) *Process {
	p := &Process{eng: e, resume: make(chan struct{}), Name: name}
	e.At(e.now, func() {
		go func() {
			<-p.resume // wait for the engine's handoff
			fn(p)
			e.yield <- struct{}{} // return control on termination
		}()
		e.handoff(p)
	})
	return p
}

// handoff transfers control to p and waits until it blocks or terminates.
func (e *Engine) handoff(p *Process) {
	p.resume <- struct{}{}
	<-e.yield
}

// Run executes events until the queue is empty. It returns the number of
// processes still suspended with no scheduled wake — non-zero means the
// simulated program deadlocked (e.g. a receive with no matching send).
func (e *Engine) Run() int {
	if e.running {
		panic("sim: Run reentered")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.time
		ev.fn()
	}
	return e.blocked
}

// yieldToEngine gives control back to the engine and blocks until resumed.
func (p *Process) yieldToEngine() {
	p.eng.yield <- struct{}{}
	<-p.resume
}

// Delay advances the process by d seconds of virtual time (d < 0 is an
// error).
func (p *Process) Delay(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	p.WaitUntil(p.eng.now + d)
}

// WaitUntil blocks the process until absolute virtual time t (no-op if t
// is in the past).
func (p *Process) WaitUntil(t float64) {
	if t <= p.eng.now {
		return
	}
	e := p.eng
	e.At(t, func() { e.handoff(p) })
	p.yieldToEngine()
}

// Suspend blocks the process indefinitely; only Engine.Wake resumes it.
func (p *Process) Suspend() {
	p.eng.blocked++
	p.yieldToEngine()
}

// Wake schedules suspended process q to resume at absolute time t.
func (e *Engine) Wake(t float64, q *Process) {
	e.blocked--
	e.At(t, func() { e.handoff(q) })
}
