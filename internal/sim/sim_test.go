package sim

import (
	"testing"
)

func TestDelayAdvancesClock(t *testing.T) {
	e := NewEngine()
	var times []float64
	e.Spawn("a", func(p *Process) {
		times = append(times, e.Now())
		p.Delay(2.5)
		times = append(times, e.Now())
		p.Delay(0)
		times = append(times, e.Now())
	})
	if stuck := e.Run(); stuck != 0 {
		t.Fatalf("%d stuck processes", stuck)
	}
	if len(times) != 3 || times[0] != 0 || times[1] != 2.5 || times[2] != 2.5 {
		t.Fatalf("times = %v", times)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	panicked := false
	e.Spawn("a", func(p *Process) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		p.Delay(-1)
	})
	e.Run()
	if !panicked {
		t.Fatal("expected panic on negative delay")
	}
}

func TestProcessInterleavingDeterministic(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var order []string
		for _, spec := range []struct {
			name  string
			delay float64
		}{{"slow", 3}, {"fast", 1}, {"mid", 2}} {
			spec := spec
			e.Spawn(spec.name, func(p *Process) {
				p.Delay(spec.delay)
				order = append(order, spec.name)
			})
		}
		e.Run()
		return order
	}
	want := run()
	if want[0] != "fast" || want[1] != "mid" || want[2] != "slow" {
		t.Fatalf("order = %v", want)
	}
	for i := 0; i < 5; i++ {
		got := run()
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("run %d nondeterministic: %v vs %v", i, got, want)
			}
		}
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.At(1.0, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events out of order: %v", order)
		}
	}
}

func TestMailboxDelivery(t *testing.T) {
	e := NewEngine()
	box := NewMailbox(e)
	var recvTime float64
	var got Message
	e.Spawn("recv", func(p *Process) {
		got = box.Get(p)
		recvTime = e.Now()
	})
	e.Spawn("send", func(p *Process) {
		p.Delay(5)
		box.PutAt(7, Message{Src: 3, Tag: 1, Bytes: 100})
	})
	if stuck := e.Run(); stuck != 0 {
		t.Fatalf("%d stuck", stuck)
	}
	if recvTime != 7 || got.Src != 3 || got.Bytes != 100 {
		t.Fatalf("recv at %v, msg %+v", recvTime, got)
	}
}

func TestMailboxQueuedMessageImmediate(t *testing.T) {
	e := NewEngine()
	box := NewMailbox(e)
	box.Put(Message{Src: 1})
	var when float64 = -1
	e.Spawn("r", func(p *Process) {
		p.Delay(2)
		box.Get(p)
		when = e.Now()
	})
	e.Run()
	if when != 2 {
		t.Fatalf("queued message should be consumed without blocking, got t=%v", when)
	}
}

func TestRunReportsStuckProcess(t *testing.T) {
	e := NewEngine()
	box := NewMailbox(e)
	e.Spawn("waiter", func(p *Process) {
		box.Get(p) // never satisfied
	})
	if stuck := e.Run(); stuck != 1 {
		t.Fatalf("stuck = %d, want 1", stuck)
	}
}

func TestResourceSerializes(t *testing.T) {
	e := NewEngine()
	r := NewResource("link")
	ends := map[string]float64{}
	for _, name := range []string{"a", "b", "c"} {
		name := name
		e.Spawn(name, func(p *Process) {
			r.AcquireFor(p, 2)
			ends[name] = e.Now()
		})
	}
	e.Run()
	// All start at t=0 in spawn order; FIFO serialization → 2, 4, 6.
	if ends["a"] != 2 || ends["b"] != 4 || ends["c"] != 6 {
		t.Fatalf("ends = %v", ends)
	}
	if r.Busy != 6 {
		t.Fatalf("busy = %v", r.Busy)
	}
}

func TestResourceReserveAt(t *testing.T) {
	r := NewResource("x")
	if end := r.ReserveAt(10, 5); end != 15 {
		t.Fatalf("end = %v", end)
	}
	// Earlier request queues behind the existing reservation.
	if end := r.ReserveAt(0, 1); end != 16 {
		t.Fatalf("end = %v", end)
	}
}

func TestGateStragglerRelease(t *testing.T) {
	e := NewEngine()
	g := NewGate(e, 3, func() float64 { return 10 })
	type rec struct{ sync, hold, done float64 }
	recs := map[string]rec{}
	for _, spec := range []struct {
		name  string
		delay float64
	}{{"fast", 1}, {"mid", 4}, {"slow", 9}} {
		spec := spec
		e.Spawn(spec.name, func(p *Process) {
			p.Delay(spec.delay)
			s, h := g.Wait(p)
			recs[spec.name] = rec{s, h, e.Now()}
		})
	}
	if stuck := e.Run(); stuck != 0 {
		t.Fatalf("%d stuck", stuck)
	}
	// Everyone released at max(9) + hold(10) = 19.
	for name, r := range recs {
		if r.done != 19 {
			t.Fatalf("%s released at %v, want 19", name, r.done)
		}
		if r.hold != 10 {
			t.Fatalf("%s hold %v", name, r.hold)
		}
	}
	if recs["fast"].sync != 8 || recs["slow"].sync != 0 || recs["mid"].sync != 5 {
		t.Fatalf("sync waits wrong: %+v", recs)
	}
}

func TestGateReusableAcrossCycles(t *testing.T) {
	e := NewEngine()
	g := NewGate(e, 2, func() float64 { return 1 })
	var rounds []float64
	for i := 0; i < 2; i++ {
		i := i
		e.Spawn("p", func(p *Process) {
			for r := 0; r < 3; r++ {
				p.Delay(float64(i + 1)) // p0 arrives earlier each round
				g.Wait(p)
				if i == 0 {
					rounds = append(rounds, e.Now())
				}
			}
		})
	}
	if stuck := e.Run(); stuck != 0 {
		t.Fatalf("%d stuck", stuck)
	}
	// Round k releases at arrival of the slower party + 1.
	want := []float64{3, 6, 9}
	for i := range want {
		if rounds[i] != want[i] {
			t.Fatalf("round releases %v, want %v", rounds, want)
		}
	}
}

func TestGateSinglePartyNoWait(t *testing.T) {
	e := NewEngine()
	g := NewGate(e, 1, func() float64 { return 2 })
	var sync, hold, done float64
	e.Spawn("solo", func(p *Process) {
		p.Delay(1)
		sync, hold = g.Wait(p)
		done = e.Now()
	})
	e.Run()
	if sync != 0 || hold != 2 || done != 3 {
		t.Fatalf("solo gate: sync=%v hold=%v done=%v", sync, hold, done)
	}
}

func TestSpawnDuringRun(t *testing.T) {
	e := NewEngine()
	var childRan bool
	e.Spawn("parent", func(p *Process) {
		p.Delay(1)
		e.Spawn("child", func(c *Process) {
			c.Delay(1)
			childRan = true
		})
		p.Delay(5)
	})
	if stuck := e.Run(); stuck != 0 {
		t.Fatalf("%d stuck", stuck)
	}
	if !childRan {
		t.Fatal("child process did not run")
	}
}

func TestWaitUntilPast(t *testing.T) {
	e := NewEngine()
	var tEnd float64
	e.Spawn("p", func(p *Process) {
		p.Delay(5)
		p.WaitUntil(3) // in the past: no-op
		tEnd = e.Now()
	})
	e.Run()
	if tEnd != 5 {
		t.Fatalf("tEnd = %v", tEnd)
	}
}

// Property: a FIFO resource never overlaps reservations and conserves
// total busy time.
func TestResourceReservationProperty(t *testing.T) {
	r := NewResource("x")
	prevEnd := 0.0
	var totalDur float64
	for i := 0; i < 200; i++ {
		at := float64((i * 37) % 100)
		dur := float64((i*13)%7) + 0.5
		end := r.ReserveAt(at, dur)
		start := end - dur
		if start < prevEnd-1e-12 {
			t.Fatalf("reservation %d overlaps: start %v before previous end %v", i, start, prevEnd)
		}
		if start < at-1e-12 {
			t.Fatalf("reservation %d starts before requested time", i)
		}
		prevEnd = end
		totalDur += dur
	}
	if r.Busy != totalDur {
		t.Fatalf("busy %v, want %v", r.Busy, totalDur)
	}
}

// Property: gate release time equals max(arrival)+hold for random arrival
// patterns.
func TestGateReleaseProperty(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		e := NewEngine()
		n := 2 + trial%5
		hold := float64(trial%3) + 0.5
		g := NewGate(e, n, func() float64 { return hold })
		arrivals := make([]float64, n)
		releases := make([]float64, n)
		for i := 0; i < n; i++ {
			i := i
			arrivals[i] = float64((i*31 + trial*17) % 23)
			e.Spawn("p", func(p *Process) {
				p.Delay(arrivals[i])
				g.Wait(p)
				releases[i] = e.Now()
			})
		}
		if stuck := e.Run(); stuck != 0 {
			t.Fatalf("trial %d: %d stuck", trial, stuck)
		}
		maxArr := 0.0
		for _, a := range arrivals {
			if a > maxArr {
				maxArr = a
			}
		}
		for i, r := range releases {
			if r != maxArr+hold {
				t.Fatalf("trial %d: release[%d] = %v, want %v", trial, i, r, maxArr+hold)
			}
		}
	}
}
