package tensor

import (
	"math"
	"math/rand"
)

// RandMatrix returns an r×c matrix with i.i.d. uniform entries in
// [-scale, scale) drawn from rng. It is used for test data and for simple
// weight initialization.
func RandMatrix(rng *rand.Rand, r, c int, scale float32) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = (rng.Float32()*2 - 1) * scale
	}
	return m
}

// RandVector returns a vector of length n with i.i.d. uniform entries in
// [-scale, scale).
func RandVector(rng *rand.Rand, n int, scale float32) Vector {
	v := NewVector(n)
	for i := range v {
		v[i] = (rng.Float32()*2 - 1) * scale
	}
	return v
}

// GlorotInit fills m with the normalized uniform initialization of Glorot &
// Bengio (2010), which the paper cites as one of the enablers of training
// deep networks from random starts: U(-r, r) with r = sqrt(6/(fanIn+fanOut)).
func GlorotInit(rng *rand.Rand, m *Matrix, fanIn, fanOut int) {
	r := float32(math.Sqrt(6.0 / float64(fanIn+fanOut)))
	for i := range m.Data {
		m.Data[i] = (rng.Float32()*2 - 1) * r
	}
}

// GaussianVector returns a vector of length n with i.i.d. N(0, sigma²)
// entries.
func GaussianVector(rng *rand.Rand, n int, sigma float64) Vector {
	v := NewVector(n)
	for i := range v {
		v[i] = float32(rng.NormFloat64() * sigma)
	}
	return v
}
