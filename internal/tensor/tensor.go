// Package tensor provides dense single-precision matrices and vectors used
// throughout the training stack.
//
// The paper's workloads are dominated by single-precision GEMM (SGEMM), so
// the primary element type is float32. Matrices are stored row-major in a
// flat slice with an explicit stride, which lets submatrix views share
// storage with their parent.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major float32 matrix. The element (i, j) is stored
// at Data[i*Stride+j]. A Matrix with Stride == Cols is "compact": its rows
// are contiguous in memory.
type Matrix struct {
	Rows   int
	Cols   int
	Stride int
	Data   []float32
}

// NewMatrix returns a zeroed r×c compact matrix.
//
//lint:shape return=(r,c)
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: invalid dimensions %d×%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Stride: c, Data: make([]float32, r*c)}
}

// FromSlice returns an r×c matrix whose backing array is data, which must
// hold exactly r*c elements. The matrix shares storage with data.
//
//lint:shape data=r*c return=(r,c)
func FromSlice(r, c int, data []float32) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("tensor: FromSlice needs %d elements, got %d", r*c, len(data)))
	}
	return &Matrix{Rows: r, Cols: c, Stride: c, Data: data}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float32 {
	m.checkIndex(i, j)
	return m.Data[i*m.Stride+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float32) {
	m.checkIndex(i, j)
	m.Data[i*m.Stride+j] = v
}

func (m *Matrix) checkIndex(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("tensor: index (%d,%d) out of range %d×%d", i, j, m.Rows, m.Cols))
	}
}

// Row returns row i as a slice sharing storage with the matrix.
//
//lint:shape return=m.Cols
func (m *Matrix) Row(i int) []float32 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("tensor: row %d out of range %d", i, m.Rows))
	}
	return m.Data[i*m.Stride : i*m.Stride+m.Cols]
}

// View returns the r×c submatrix whose top-left corner is (i, j). The view
// shares storage with m.
//
//lint:shape return=(r,c)
func (m *Matrix) View(i, j, r, c int) *Matrix {
	if i < 0 || j < 0 || r < 0 || c < 0 || i+r > m.Rows || j+c > m.Cols {
		panic(fmt.Sprintf("tensor: view (%d,%d,%d,%d) out of range %d×%d", i, j, r, c, m.Rows, m.Cols))
	}
	return &Matrix{Rows: r, Cols: c, Stride: m.Stride, Data: m.Data[i*m.Stride+j:]}
}

// Clone returns a compact deep copy of m.
//
//lint:shape return=(m.Rows,m.Cols)
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i))
	}
	return out
}

// CopyFrom copies the contents of src into m. Dimensions must match.
//
//lint:shape m=(r,c) src=(r,c)
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: copy %d×%d into %d×%d", src.Rows, src.Cols, m.Rows, m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.Row(i), src.Row(i))
	}
}

// Fill sets every element of m to v.
func (m *Matrix) Fill(v float32) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = v
		}
	}
}

// Zero sets every element of m to zero.
func (m *Matrix) Zero() { m.Fill(0) }

// Scale multiplies every element of m by alpha.
func (m *Matrix) Scale(alpha float32) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] *= alpha
		}
	}
}

// T returns a compact transposed copy of m.
//
//lint:shape return=(m.Cols,m.Rows)
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*out.Stride+i] = v
		}
	}
	return out
}

// EqualApprox reports whether a and b have the same shape and all elements
// within tol of each other.
func EqualApprox(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := 0; i < a.Rows; i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if math.Abs(float64(ra[j])-float64(rb[j])) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute elementwise difference between a
// and b, which must have the same shape.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MaxAbsDiff shape mismatch %d×%d vs %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	var max float64
	for i := 0; i < a.Rows; i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			d := math.Abs(float64(ra[j]) - float64(rb[j]))
			if d > max {
				max = d
			}
		}
	}
	return max
}

// String renders small matrices for debugging; large matrices are
// summarized by shape only.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix(%d×%d)", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("Matrix(%d×%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}
