package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || m.Stride != 4 {
		t.Fatalf("bad shape: %+v", m)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	if m.At(0, 2) != 0 || m.At(1, 1) != 0 {
		t.Fatal("Set modified neighbouring elements")
	}
}

func TestFromSlice(t *testing.T) {
	data := []float32{1, 2, 3, 4, 5, 6}
	m := FromSlice(2, 3, data)
	if m.At(0, 0) != 1 || m.At(1, 2) != 6 {
		t.Fatalf("FromSlice layout wrong: %v", m)
	}
	m.Set(0, 1, 9)
	if data[1] != 9 {
		t.Fatal("FromSlice must share storage")
	}
}

func TestFromSliceBadLength(t *testing.T) {
	defer expectPanic(t, "FromSlice with wrong length")
	FromSlice(2, 3, make([]float32, 5))
}

func TestAtOutOfRange(t *testing.T) {
	m := NewMatrix(2, 2)
	defer expectPanic(t, "At out of range")
	m.At(2, 0)
}

func TestSetOutOfRange(t *testing.T) {
	m := NewMatrix(2, 2)
	defer expectPanic(t, "Set out of range")
	m.Set(0, -1, 1)
}

func TestRowSharesStorage(t *testing.T) {
	m := NewMatrix(3, 3)
	row := m.Row(1)
	row[2] = 42
	if m.At(1, 2) != 42 {
		t.Fatal("Row must alias matrix storage")
	}
}

func TestViewAliasing(t *testing.T) {
	m := NewMatrix(4, 5)
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			m.Set(i, j, float32(10*i+j))
		}
	}
	v := m.View(1, 2, 2, 3)
	if v.Rows != 2 || v.Cols != 3 {
		t.Fatalf("view shape %d×%d", v.Rows, v.Cols)
	}
	if v.At(0, 0) != 12 || v.At(1, 2) != 24 {
		t.Fatalf("view contents wrong: %v %v", v.At(0, 0), v.At(1, 2))
	}
	v.Set(0, 0, -1)
	if m.At(1, 2) != -1 {
		t.Fatal("view must alias parent")
	}
}

func TestViewOutOfRange(t *testing.T) {
	m := NewMatrix(4, 5)
	defer expectPanic(t, "View out of range")
	m.View(2, 2, 3, 3)
}

func TestCloneIndependent(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 5)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not alias source")
	}
}

func TestCloneOfViewIsCompact(t *testing.T) {
	m := NewMatrix(4, 4)
	m.Set(1, 1, 3)
	v := m.View(1, 1, 2, 2)
	c := v.Clone()
	if c.Stride != 2 {
		t.Fatalf("clone of view should be compact, stride %d", c.Stride)
	}
	if c.At(0, 0) != 3 {
		t.Fatal("clone of view lost contents")
	}
}

func TestCopyFromShapeMismatch(t *testing.T) {
	a, b := NewMatrix(2, 2), NewMatrix(2, 3)
	defer expectPanic(t, "CopyFrom shape mismatch")
	a.CopyFrom(b)
}

func TestFillScaleZero(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Fill(2)
	m.Scale(3)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != 6 {
				t.Fatalf("(%d,%d) = %v, want 6", i, j, m.At(i, j))
			}
		}
	}
	m.Zero()
	if m.At(1, 2) != 0 {
		t.Fatal("Zero failed")
	}
}

func TestTranspose(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose shape %d×%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := 1 + int(seed%7&7)
		if r < 1 {
			r = 1
		}
		m := RandMatrix(rng, r, r+1, 1)
		return EqualApprox(m, m.T().T(), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualApprox(t *testing.T) {
	a := FromSlice(1, 2, []float32{1, 2})
	b := FromSlice(1, 2, []float32{1.0005, 2})
	if !EqualApprox(a, b, 1e-3) {
		t.Fatal("should be equal within 1e-3")
	}
	if EqualApprox(a, b, 1e-5) {
		t.Fatal("should differ at 1e-5")
	}
	c := NewMatrix(2, 1)
	if EqualApprox(a, c, 1) {
		t.Fatal("different shapes must not be equal")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := FromSlice(1, 3, []float32{1, 2, 3})
	b := FromSlice(1, 3, []float32{1, 2.5, 2})
	if d := MaxAbsDiff(a, b); math.Abs(d-1) > 1e-9 {
		t.Fatalf("MaxAbsDiff = %v, want 1", d)
	}
}

func TestStringForms(t *testing.T) {
	small := FromSlice(1, 2, []float32{1, 2})
	if s := small.String(); s == "" {
		t.Fatal("empty String for small matrix")
	}
	big := NewMatrix(100, 100)
	if s := big.String(); s != "Matrix(100×100)" {
		t.Fatalf("big matrix String = %q", s)
	}
}

func expectPanic(t *testing.T, what string) {
	t.Helper()
	if recover() == nil {
		t.Fatalf("%s: expected panic", what)
	}
}

// Property: a view's elements always alias the parent at the shifted
// coordinates, for random view rectangles.
func TestViewAliasProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(seed uint32) bool {
		m := RandMatrix(rng, 8, 9, 1)
		i := int(seed % 5)
		j := int(seed/5) % 6
		r := int(seed/30)%(8-i) + 1
		c := int(seed/200)%(9-j) + 1
		v := m.View(i, j, r, c)
		for a := 0; a < r; a++ {
			for b := 0; b < c; b++ {
				if v.At(a, b) != m.At(i+a, j+b) {
					return false
				}
			}
		}
		// Mutating the view must hit the parent.
		v.Set(r-1, c-1, 123)
		return m.At(i+r-1, j+c-1) == 123
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
