package tensor

import (
	"fmt"
	"math"
)

// Vector is a dense float32 vector. Most optimizer state (parameters,
// gradients, CG directions) is manipulated as flat Vectors.
type Vector []float32

// NewVector returns a zeroed vector of length n.
//
//lint:shape return=n
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a deep copy of v.
//
//lint:shape v=n return=n
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Zero sets every element of v to zero.
func (v Vector) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Fill sets every element of v to x.
func (v Vector) Fill(x float32) {
	for i := range v {
		v[i] = x
	}
}

// Scale multiplies every element of v by alpha in place.
func (v Vector) Scale(alpha float32) {
	for i := range v {
		v[i] *= alpha
	}
}

// AddScaled performs v += alpha*u in place. The vectors must have the same
// length.
//
//lint:shape v=n u=n
func (v Vector) AddScaled(alpha float32, u Vector) {
	if len(v) != len(u) {
		panic(fmt.Sprintf("tensor: AddScaled length mismatch %d vs %d", len(v), len(u)))
	}
	for i := range v {
		v[i] += alpha * u[i]
	}
}

// Dot returns the inner product of v and u accumulated in float64 for
// stability; the optimizer's CG recurrences depend on accurate dot products.
//
//lint:shape v=n u=n
func (v Vector) Dot(u Vector) float64 {
	if len(v) != len(u) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(v), len(u)))
	}
	var s float64
	for i := range v {
		s += float64(v[i]) * float64(u[i])
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func (v Vector) Norm2() float64 { return math.Sqrt(v.Dot(v)) }

// MaxAbs returns the largest absolute element of v (0 for an empty vector).
func (v Vector) MaxAbs() float64 {
	var max float64
	for _, x := range v {
		a := math.Abs(float64(x))
		if a > max {
			max = a
		}
	}
	return max
}

// EqualApproxVec reports whether a and b have the same length and all
// elements within tol of each other.
func EqualApproxVec(a, b Vector, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(float64(a[i])-float64(b[i])) > tol {
			return false
		}
	}
	return true
}
