package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorCloneIndependent(t *testing.T) {
	v := Vector{1, 2, 3}
	c := v.Clone()
	c[0] = 9
	if v[0] != 1 {
		t.Fatal("Clone must not alias")
	}
}

func TestVectorZeroFillScale(t *testing.T) {
	v := NewVector(3)
	v.Fill(2)
	v.Scale(0.5)
	for _, x := range v {
		if x != 1 {
			t.Fatalf("got %v, want 1", x)
		}
	}
	v.Zero()
	for _, x := range v {
		if x != 0 {
			t.Fatal("Zero failed")
		}
	}
}

func TestAddScaled(t *testing.T) {
	v := Vector{1, 2, 3}
	u := Vector{1, 1, 1}
	v.AddScaled(2, u)
	want := Vector{3, 4, 5}
	if !EqualApproxVec(v, want, 0) {
		t.Fatalf("got %v, want %v", v, want)
	}
}

func TestAddScaledLengthMismatch(t *testing.T) {
	defer expectPanic(t, "AddScaled length mismatch")
	Vector{1}.AddScaled(1, Vector{1, 2})
}

func TestDotKnown(t *testing.T) {
	v := Vector{1, 2, 3}
	u := Vector{4, 5, 6}
	if d := v.Dot(u); d != 32 {
		t.Fatalf("Dot = %v, want 32", d)
	}
}

func TestDotLengthMismatch(t *testing.T) {
	defer expectPanic(t, "Dot length mismatch")
	Vector{1}.Dot(Vector{1, 2})
}

func TestNorm2(t *testing.T) {
	v := Vector{3, 4}
	if n := v.Norm2(); math.Abs(n-5) > 1e-12 {
		t.Fatalf("Norm2 = %v, want 5", n)
	}
}

func TestMaxAbs(t *testing.T) {
	if m := (Vector{1, -7, 3}).MaxAbs(); m != 7 {
		t.Fatalf("MaxAbs = %v, want 7", m)
	}
	if m := (Vector{}).MaxAbs(); m != 0 {
		t.Fatalf("MaxAbs of empty = %v, want 0", m)
	}
}

// Property: dot is symmetric and bilinear within float tolerance.
func TestDotSymmetryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(n uint8) bool {
		k := int(n%32) + 1
		v := RandVector(rng, k, 1)
		u := RandVector(rng, k, 1)
		return math.Abs(v.Dot(u)-u.Dot(v)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: ||v||² == v·v.
func TestNormDotConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(n uint8) bool {
		k := int(n%64) + 1
		v := RandVector(rng, k, 2)
		n2 := v.Norm2()
		return math.Abs(n2*n2-v.Dot(v)) < 1e-6*(1+v.Dot(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: AddScaled is linear: (v + a*u) - a*u == v.
func TestAddScaledInverseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(n uint8, a float32) bool {
		if math.IsNaN(float64(a)) || math.IsInf(float64(a), 0) || math.Abs(float64(a)) > 1e3 {
			return true
		}
		k := int(n%32) + 1
		v := RandVector(rng, k, 1)
		orig := v.Clone()
		u := RandVector(rng, k, 1)
		v.AddScaled(a, u)
		v.AddScaled(-a, u)
		return EqualApproxVec(v, orig, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGlorotInitRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMatrix(10, 20)
	GlorotInit(rng, m, 10, 20)
	limit := math.Sqrt(6.0 / 30.0)
	var nonZero int
	for _, x := range m.Data {
		if math.Abs(float64(x)) > limit {
			t.Fatalf("Glorot value %v outside ±%v", x, limit)
		}
		if x != 0 {
			nonZero++
		}
	}
	if nonZero < len(m.Data)/2 {
		t.Fatal("Glorot init produced mostly zeros")
	}
}

func TestGaussianVectorMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	v := GaussianVector(rng, 20000, 2)
	var mean, m2 float64
	for _, x := range v {
		mean += float64(x)
	}
	mean /= float64(len(v))
	for _, x := range v {
		d := float64(x) - mean
		m2 += d * d
	}
	sd := math.Sqrt(m2 / float64(len(v)))
	if math.Abs(mean) > 0.1 {
		t.Fatalf("mean = %v, want ≈0", mean)
	}
	if math.Abs(sd-2) > 0.1 {
		t.Fatalf("sd = %v, want ≈2", sd)
	}
}

func TestRandMatrixScale(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := RandMatrix(rng, 8, 8, 0.5)
	for _, x := range m.Data {
		if x < -0.5 || x >= 0.5 {
			t.Fatalf("value %v outside [-0.5, 0.5)", x)
		}
	}
}
