// Package torus models the Blue Gene/Q 5-D torus interconnect (§III):
// node coordinates, shortest-path wrap-around distances, dimension-ordered
// routing, and the standard partition shapes of midplanes and racks. The
// machine model uses it for hop latencies and for per-node link
// serialization in point-to-point traffic.
package torus

import "fmt"

// Dims is the number of torus dimensions (A,B,C,D,E on BG/Q).
const Dims = 5

// Shape is the extent of the partition in each dimension.
type Shape [Dims]int

// Coord is a node coordinate.
type Coord [Dims]int

// Standard BG/Q partition shapes, from the Blue Gene/Q system
// documentation: the E dimension is fixed at 2 within a midplane.
var standardShapes = map[int]Shape{
	32:   {2, 2, 2, 2, 2},
	64:   {2, 2, 4, 2, 2},
	128:  {2, 2, 4, 4, 2},
	256:  {4, 2, 4, 4, 2},
	512:  {4, 4, 4, 4, 2}, // midplane
	1024: {4, 4, 4, 8, 2}, // one rack
	2048: {4, 4, 4, 16, 2},
	4096: {4, 4, 8, 16, 2},
	8192: {4, 4, 16, 16, 2},
}

// ShapeFor returns the torus shape of a partition with the given number of
// nodes, using the standard BG/Q shape when one exists and otherwise
// factoring the count into 5 near-balanced power-of-two extents.
func ShapeFor(nodes int) (Shape, error) {
	if s, ok := standardShapes[nodes]; ok {
		return s, nil
	}
	if nodes <= 0 || nodes&(nodes-1) != 0 {
		return Shape{}, fmt.Errorf("torus: unsupported partition size %d (want a power of two)", nodes)
	}
	s := Shape{1, 1, 1, 1, 1}
	rem := nodes
	for d := 0; rem > 1; d = (d + 1) % Dims {
		s[d] *= 2
		rem /= 2
	}
	return s, nil
}

// Size returns the number of nodes in the shape.
func (s Shape) Size() int {
	n := 1
	for _, e := range s {
		n *= e
	}
	return n
}

// Coord converts a node index into its coordinate (mixed-radix,
// dimension A fastest).
func (s Shape) Coord(node int) Coord {
	if node < 0 || node >= s.Size() {
		panic(fmt.Sprintf("torus: node %d out of range %d", node, s.Size()))
	}
	var c Coord
	for d := 0; d < Dims; d++ {
		c[d] = node % s[d]
		node /= s[d]
	}
	return c
}

// Node converts a coordinate back into a node index.
func (s Shape) Node(c Coord) int {
	node := 0
	mul := 1
	for d := 0; d < Dims; d++ {
		if c[d] < 0 || c[d] >= s[d] {
			panic(fmt.Sprintf("torus: coord %v out of shape %v", c, s))
		}
		node += c[d] * mul
		mul *= s[d]
	}
	return node
}

// dimDist returns the shortest wrap-around distance along dimension d.
func (s Shape) dimDist(d, a, b int) int {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	if wrap := s[d] - diff; wrap < diff {
		return wrap
	}
	return diff
}

// HopCount returns the number of torus links on a shortest path between
// two nodes (the sum of per-dimension wrap distances).
func (s Shape) HopCount(a, b int) int {
	ca, cb := s.Coord(a), s.Coord(b)
	hops := 0
	for d := 0; d < Dims; d++ {
		hops += s.dimDist(d, ca[d], cb[d])
	}
	return hops
}

// MaxHops returns the torus diameter: the largest shortest-path hop count
// between any two nodes (computable per dimension as ⌊extent/2⌋).
func (s Shape) MaxHops() int {
	hops := 0
	for _, e := range s {
		hops += e / 2
	}
	return hops
}

// Route returns the dimension-ordered route from a to b as the sequence of
// intermediate nodes (excluding a, including b). BG/Q routes deterministic
// traffic dimension by dimension; the machine model uses route length and
// endpoints for link accounting.
func (s Shape) Route(a, b int) []int {
	ca, cb := s.Coord(a), s.Coord(b)
	var path []int
	cur := ca
	for d := 0; d < Dims; d++ {
		for cur[d] != cb[d] {
			// Step in the shorter wrap direction.
			up := (cb[d] - cur[d] + s[d]) % s[d]
			down := (cur[d] - cb[d] + s[d]) % s[d]
			if up <= down {
				cur[d] = (cur[d] + 1) % s[d]
			} else {
				cur[d] = (cur[d] - 1 + s[d]) % s[d]
			}
			path = append(path, s.Node(cur))
		}
	}
	return path
}

// String renders the shape as AxBxCxDxE.
func (s Shape) String() string {
	return fmt.Sprintf("%dx%dx%dx%dx%d", s[0], s[1], s[2], s[3], s[4])
}
