package torus

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStandardShapes(t *testing.T) {
	for nodes := range standardShapes {
		s, err := ShapeFor(nodes)
		if err != nil {
			t.Fatalf("%d nodes: %v", nodes, err)
		}
		if s.Size() != nodes {
			t.Fatalf("%d nodes: shape %v has size %d", nodes, s, s.Size())
		}
	}
	// One rack is 4x4x4x8x2.
	rack, _ := ShapeFor(1024)
	if rack != (Shape{4, 4, 4, 8, 2}) {
		t.Fatalf("rack shape %v", rack)
	}
}

func TestShapeForNonStandardPowerOfTwo(t *testing.T) {
	s, err := ShapeFor(16)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 16 {
		t.Fatalf("size %d", s.Size())
	}
}

func TestShapeForInvalid(t *testing.T) {
	for _, n := range []int{0, -4, 3, 100} {
		if _, err := ShapeFor(n); err == nil {
			t.Fatalf("expected error for %d nodes", n)
		}
	}
}

func TestCoordNodeRoundTrip(t *testing.T) {
	s, _ := ShapeFor(1024)
	for node := 0; node < s.Size(); node += 37 {
		if got := s.Node(s.Coord(node)); got != node {
			t.Fatalf("roundtrip %d → %v → %d", node, s.Coord(node), got)
		}
	}
}

func TestCoordOutOfRangePanics(t *testing.T) {
	s, _ := ShapeFor(32)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Coord(32)
}

func TestHopCountProperties(t *testing.T) {
	s, _ := ShapeFor(512)
	rng := rand.New(rand.NewSource(1))
	f := func(aSeed, bSeed uint16) bool {
		a := int(aSeed) % s.Size()
		b := int(bSeed) % s.Size()
		h := s.HopCount(a, b)
		// Symmetry, identity, diameter bound.
		if h != s.HopCount(b, a) {
			return false
		}
		if (a == b) != (h == 0) {
			return false
		}
		if h > s.MaxHops() {
			return false
		}
		// Triangle inequality through a random waypoint.
		c := rng.Intn(s.Size())
		return h <= s.HopCount(a, c)+s.HopCount(c, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHopCountWrapAround(t *testing.T) {
	s := Shape{8, 1, 1, 1, 1}
	// 0 → 7 wraps: distance 1, not 7.
	if h := s.HopCount(0, s.Node(Coord{7, 0, 0, 0, 0})); h != 1 {
		t.Fatalf("wrap distance = %d, want 1", h)
	}
	if h := s.HopCount(0, s.Node(Coord{4, 0, 0, 0, 0})); h != 4 {
		t.Fatalf("half-way distance = %d, want 4", h)
	}
}

func TestMaxHops(t *testing.T) {
	rack, _ := ShapeFor(1024) // 4x4x4x8x2 → 2+2+2+4+1 = 11
	if rack.MaxHops() != 11 {
		t.Fatalf("rack diameter %d, want 11", rack.MaxHops())
	}
}

func TestRouteLengthMatchesHopCount(t *testing.T) {
	s, _ := ShapeFor(256)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		a, b := rng.Intn(s.Size()), rng.Intn(s.Size())
		route := s.Route(a, b)
		if len(route) != s.HopCount(a, b) {
			t.Fatalf("route %d→%d has %d hops, HopCount says %d", a, b, len(route), s.HopCount(a, b))
		}
		if len(route) > 0 && route[len(route)-1] != b {
			t.Fatalf("route %d→%d ends at %d", a, b, route[len(route)-1])
		}
		// Consecutive route nodes must be exactly one hop apart.
		prev := a
		for _, n := range route {
			if s.HopCount(prev, n) != 1 {
				t.Fatalf("route step %d→%d is not a single hop", prev, n)
			}
			prev = n
		}
	}
}

func TestRouteSelfEmpty(t *testing.T) {
	s, _ := ShapeFor(64)
	if len(s.Route(5, 5)) != 0 {
		t.Fatal("self-route must be empty")
	}
}

func TestShapeString(t *testing.T) {
	s, _ := ShapeFor(1024)
	if s.String() != "4x4x4x8x2" {
		t.Fatalf("String = %q", s.String())
	}
}
