// Package workload converts the Hessian-free training algorithm into
// simulator workloads and replays them on the machine models of
// internal/bgq, regenerating the paper's evaluation (Figures 1-5,
// Table I, and the scaling study).
//
// The link to reality is AlgoCounts: per-phase operation counts derived
// from the DNN topology plus algorithm statistics (CG iterations per HF
// iteration, loss evaluations per iteration) that can be measured from a
// real run of the internal/core trainer via MeasureCounts. Large-scale
// results are therefore a replay of the true algorithm structure under
// modeled hardware, not free-floating formulas.
package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hf"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Flop factors relative to one forward pass (2·Σ in·out per frame):
// backprop adds two GEMMs per layer, the Gauss-Newton product runs
// forward + R-forward + backward.
const (
	gradFlopFactor = 3.0
	gnFlopFactor   = 5.0
	// cgVectorFlopsPerParam counts the master's per-CG-iteration vector
	// arithmetic (dots, axpys, direction update) in flops per parameter.
	cgVectorFlopsPerParam = 12.0
)

// AlgoCounts are the operation counts of one training run, the workload
// description fed to Simulate.
type AlgoCounts struct {
	// Model geometry.
	Params           int64
	FwdFlopsPerFrame float64

	// Data sizes (frames).
	TrainFrames  int64
	HeldFrames   int64
	SampleFrames int64 // curvature sample per CG round (1-3% of train)

	// Algorithm statistics, measurable from a real run.
	CGItersPerHF   float64
	LossEvalsPerHF float64
	HFIters        int

	// GradPassFactor multiplies the GEMM work of gradient and loss-eval
	// phases; sequence training makes two passes (numerator and
	// denominator lattices), cross-entropy one. Values ≤ 0 mean 1.
	GradPassFactor float64

	// Sequence criterion: extra scalar (non-SIMD) flops per frame for the
	// utterance-level forward-backward, zero for cross-entropy.
	SeqScalarFlopsPerFrame float64

	// MeanUttFrames is the average utterance length in frames. Curvature
	// samples are drawn at utterance granularity, so once the sample holds
	// fewer utterances than there are workers, the per-CG-round work stops
	// shrinking — the dominant source of sub-linear scaling beyond 4096
	// ranks. Default 400 (≈4 s at 100 frames/s).
	MeanUttFrames int64

	// BytesPerFrame sizes the load_data distribution (features+targets).
	BytesPerFrame int64
}

// Validate checks internal consistency.
func (c AlgoCounts) Validate() error {
	if c.Params <= 0 || c.TrainFrames <= 0 || c.HeldFrames <= 0 || c.SampleFrames <= 0 {
		return fmt.Errorf("workload: non-positive size in %+v", c)
	}
	if c.CGItersPerHF <= 0 || c.LossEvalsPerHF <= 0 || c.HFIters <= 0 {
		return fmt.Errorf("workload: non-positive algorithm statistic in %+v", c)
	}
	if c.MeanUttFrames <= 0 {
		return fmt.Errorf("workload: non-positive MeanUttFrames in %+v", c)
	}
	return nil
}

// ParamBytes is the wire size of one parameter-length float32 vector.
func (c AlgoCounts) ParamBytes() int64 { return 4 * c.Params }

// gradPass returns the effective pass factor (≥ 1).
func (c AlgoCounts) gradPass() float64 {
	if c.GradPassFactor <= 0 {
		return 1
	}
	return c.GradPassFactor
}

// GradFlopsPerFrame returns forward+backward flops per frame, including
// the criterion's pass factor.
func (c AlgoCounts) GradFlopsPerFrame() float64 {
	return gradFlopFactor * c.FwdFlopsPerFrame * c.gradPass()
}

// EvalFlopsPerFrame returns loss-evaluation flops per frame.
func (c AlgoCounts) EvalFlopsPerFrame() float64 {
	return c.FwdFlopsPerFrame * c.gradPass()
}

// GNFlopsPerFrame returns Gauss-Newton product flops per frame.
func (c AlgoCounts) GNFlopsPerFrame() float64 { return gnFlopFactor * c.FwdFlopsPerFrame }

// CountsForTopology derives model-geometry counts from DNN layer sizes:
// Σ in·out MACs per frame forward, parameter count, and the load_data
// frame footprint for the given input dimension.
func CountsForTopology(sizes []int) (params int64, fwdFlopsPerFrame float64, bytesPerFrame int64) {
	for l := 0; l+1 < len(sizes); l++ {
		macs := int64(sizes[l]) * int64(sizes[l+1])
		params += macs + int64(sizes[l+1])
		fwdFlopsPerFrame += 2 * float64(macs)
	}
	bytesPerFrame = int64(sizes[0])*4 + 8 // spliced features + target/index
	return params, fwdFlopsPerFrame, bytesPerFrame
}

// Preset50h models the paper's 50-hour task: ≈18 M training frames and a
// speech DNN in the paper's 10-50 M parameter range (5×2048 hidden
// layers, 3000 context-dependent states).
func Preset50h(sequence bool) AlgoCounts {
	sizes := []int{440, 2048, 2048, 2048, 2048, 2048, 3000}
	params, fwd, bpf := CountsForTopology(sizes)
	c := AlgoCounts{
		Params:           params,
		FwdFlopsPerFrame: fwd,
		TrainFrames:      18_000_000,
		HeldFrames:       900_000,
		SampleFrames:     360_000, // 2% curvature sample
		CGItersPerHF:     50,
		LossEvalsPerHF:   8,
		HFIters:          30,
		MeanUttFrames:    400,
		BytesPerFrame:    bpf,
	}
	if sequence {
		applySequence(&c)
	}
	return c
}

// Preset400h models the 400-hour task: ≈144 M frames and the "over 100M
// parameter" network of §VIII (6×4096 hidden layers, 9300 states).
func Preset400h(sequence bool) AlgoCounts {
	sizes := []int{440, 4096, 4096, 4096, 4096, 4096, 4096, 9300}
	params, fwd, bpf := CountsForTopology(sizes)
	c := AlgoCounts{
		Params:           params,
		FwdFlopsPerFrame: fwd,
		TrainFrames:      144_000_000,
		HeldFrames:       7_200_000,
		SampleFrames:     1_440_000, // 1% sample
		CGItersPerHF:     50,
		LossEvalsPerHF:   8,
		HFIters:          20,
		MeanUttFrames:    400,
		BytesPerFrame:    bpf,
	}
	if sequence {
		applySequence(&c)
	}
	return c
}

// applySequence turns a cross-entropy workload into the sequence-training
// one: lattice generation adds a modest extra pass to gradient and loss
// evaluations plus per-frame scalar forward-backward work, the poorly
// conditioned discriminative objective needs a deeper CG solve each
// iteration, and convergence takes more outer iterations. The deeper CG
// shifts time toward the round-trip-dominated inner loop, which is why
// Table I's sequence speedup on BG/Q trails the cross-entropy speedup.
func applySequence(c *AlgoCounts) {
	c.SeqScalarFlopsPerFrame = seqScalarFlops
	c.GradPassFactor = 1.15
	c.CGItersPerHF = 85
	c.HFIters = int(float64(c.HFIters) * 1.4)
}

// seqScalarFlops models the utterance-level sequence criterion's extra
// per-frame cost: the lattice forward-backward and statistics
// accumulation (≈3000 arcs/frame × ~8 flops), which does not vectorize —
// the reason Table I's sequence-training speedup trails cross-entropy's
// on the in-order A2 cores.
const seqScalarFlops = 1e5

// MeasureCounts calibrates the algorithm statistics (CG iterations and
// loss evaluations per HF iteration) by running a real, small-scale
// training with the internal/core trainer, then grafting those statistics
// onto the given preset. This anchors the simulator in the behaviour of
// the actual implementation.
func MeasureCounts(base AlgoCounts, p core.Problem, cfg hf.Config) (AlgoCounts, error) {
	obj, err := core.NewSerialObjective(p)
	if err != nil {
		return base, err
	}
	counting := &countingObjective{Objective: obj}
	res := hf.Optimize(counting, cfg)
	if len(res.Iters) == 0 {
		return base, fmt.Errorf("workload: calibration run produced no iterations")
	}
	base.CGItersPerHF = float64(res.TotalCGIters) / float64(len(res.Iters))
	if base.CGItersPerHF < 1 {
		base.CGItersPerHF = 1
	}
	base.LossEvalsPerHF = float64(counting.lossEvals) / float64(len(res.Iters))
	if base.LossEvalsPerHF < 1 {
		base.LossEvalsPerHF = 1
	}
	return base, nil
}

// countingObjective wraps an hf.Objective and counts held-out loss
// evaluations (the backtracking + line-search traffic of Algorithm 1).
type countingObjective struct {
	hf.Objective
	lossEvals int
}

func (c *countingObjective) HeldOutLoss(p tensor.Vector) float64 {
	c.lossEvals++
	return c.Objective.HeldOutLoss(p)
}

// TopologyForProblem exposes the flop geometry of a real problem, for
// tests that cross-check CountsForTopology against nn.Topology.
func TopologyForProblem(topo nn.Topology) (params int64, fwdFlops float64) {
	p, f, _ := CountsForTopology(topo.Sizes)
	return p, f
}
