package workload

import (
	"repro/internal/bgq"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/nn"
	"repro/internal/torus"
)

// torusShapeFor resolves the torus shape of a BG/Q configuration.
func torusShapeFor(cfg bgq.Config) (torus.Shape, error) {
	return torus.ShapeFor(cfg.Nodes())
}

// coreProblem assembles a core.Problem for calibration tests.
func coreProblem(c, train, held *corpus.Corpus) core.Problem {
	return core.Problem{
		Topo:           nn.NewTopology(c.InputDim(), 8, c.NumStates),
		Train:          train,
		Heldout:        held,
		Criterion:      core.CrossEntropy,
		SampleFraction: 1,
		Seed:           1,
	}
}
