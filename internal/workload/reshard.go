package workload

import "repro/internal/corpus"

// Reshard re-partitions an evicted worker's orphaned utterances across
// the survivors; see corpus.Reshard (the implementation lives there so
// internal/core — which workload itself imports for MeasureCounts — can
// share it without an import cycle). Exposed here because re-shard
// planning is workload balancing, the concern of this package.
func Reshard(orphaned []*corpus.Utterance, survivors int, part corpus.Partitioner) [][]*corpus.Utterance {
	return corpus.Reshard(orphaned, survivors, part)
}

// ReshardFrames sums the frames of a supplement produced by Reshard.
func ReshardFrames(supplements [][]*corpus.Utterance) int {
	return corpus.ReshardFrames(supplements)
}
