package workload

import (
	"repro/internal/bgq"
	"repro/internal/corpus"
)

// ShardsFromPartition derives per-worker training-frame shares by running
// a real utterance partitioner over the given utterance lengths and
// scaling the resulting frame distribution to totalFrames. This is how
// the load-balance ablation (§V-C) feeds the simulator: the imbalance of
// round-robin vs sorted-greedy partitioning at paper scale, obtained from
// the actual partitioning code.
func ShardsFromPartition(lengths []int, workers int, part corpus.Partitioner, totalFrames int64) []int64 {
	utts := corpus.UtterancesFromLengths(lengths)
	shardsUtts := part.Partition(utts, workers)
	var localTotal int64
	frames := make([]int64, workers)
	for w, s := range shardsUtts {
		frames[w] = int64(corpus.TotalFrames(s))
		localTotal += frames[w]
	}
	if localTotal == 0 {
		return EvenShards(totalFrames, workers)
	}
	out := make([]int64, workers)
	var assigned int64
	for w := range frames {
		out[w] = frames[w] * totalFrames / localTotal
		assigned += out[w]
	}
	// Put rounding remainder on worker 0.
	out[0] += totalFrames - assigned
	return out
}

// WeightSyncP2PTime models the pre-MPI implementation of weight
// synchronization (§V-B): the master pushing the full weight vector to
// every worker over serial point-to-point connections, all funneled
// through its injection link.
func WeightSyncP2PTime(m bgq.MachineSpec, cfg bgq.Config, bytes int64) float64 {
	return float64(cfg.Ranks-1) * (m.MPIAlphaSec + m.InjectionTime(bytes))
}
