package workload

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bgq"
	"repro/internal/sim"
	"repro/internal/torus"
)

// PhaseReport accumulates one rank's activity in one named function
// (load_data, gradient_loss, worker_curvature_product, ...), mirroring the
// per-function breakdowns of the paper's Figures 2-5.
type PhaseReport struct {
	ComputeSec float64
	Cycles     bgq.CycleBreakdown
	CollSec    float64
	P2PSec     float64
	CollBytes  int64
	P2PBytes   int64
}

// RankReport maps function names to their accumulated activity.
type RankReport map[string]*PhaseReport

func (r RankReport) phase(name string) *PhaseReport {
	p := r[name]
	if p == nil {
		p = &PhaseReport{}
		r[name] = p
	}
	return p
}

// phaseNames returns the report's function names in sorted order — the
// deterministic iteration every float fold over a RankReport must use,
// so totals are bit-identical run to run (maporderfloat).
func (r RankReport) phaseNames() []string {
	names := make([]string, 0, len(r))
	for name := range r {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// TotalMPI sums collective and point-to-point time across functions.
func (r RankReport) TotalMPI() (coll, p2p float64) {
	for _, name := range r.phaseNames() {
		coll += r[name].CollSec
		p2p += r[name].P2PSec
	}
	return coll, p2p
}

// TotalCompute sums compute seconds across functions.
func (r RankReport) TotalCompute() float64 {
	var s float64
	for _, name := range r.phaseNames() {
		s += r[name].ComputeSec
	}
	return s
}

// scale multiplies every phase except those in skip by f.
func (r RankReport) scale(f float64, skip map[string]bool) {
	for name, p := range r {
		if skip[name] {
			continue
		}
		p.ComputeSec *= f
		p.CollSec *= f
		p.P2PSec *= f
		p.CollBytes = int64(float64(p.CollBytes) * f)
		p.P2PBytes = int64(float64(p.P2PBytes) * f)
		p.Cycles.Committed *= f
		p.Cycles.AXUStall *= f
		p.Cycles.IUEmpty *= f
	}
}

// RunResult is the outcome of one simulated training run.
type RunResult struct {
	Machine string
	Config  bgq.Config
	// LoadDataSec is the one-time data distribution phase.
	LoadDataSec float64
	// IterSec is the duration of one HF iteration (straggler-gated).
	IterSec float64
	// TotalSec = LoadDataSec + HFIters·IterSec, the Figure 1 quantity.
	TotalSec float64
	// Master is rank 0's per-function report, scaled to the full run.
	Master RankReport
	// WorkerMean averages the worker reports, scaled to the full run.
	WorkerMean RankReport
}

// simWorld carries shared simulation state.
type simWorld struct {
	eng     *sim.Engine
	m       bgq.MachineSpec
	cfg     bgq.Config
	shape   torus.Shape
	counts  AlgoCounts
	gate    *sim.Gate
	pending float64
	reports []RankReport
}

// collective performs one straggler-gated collective of the given modeled
// duration, charging sync-wait plus transfer to the rank's phase.
func (sw *simWorld) collective(p *sim.Process, rank int, phase string, dur float64, bytes int64) {
	sw.pending = dur // all ranks pass the same modeled duration
	syncW, hold := sw.gate.Wait(p)
	rep := sw.reports[rank].phase(phase)
	rep.CollSec += syncW + hold
	rep.CollBytes += bytes
}

// compute advances the rank through flops of work at the given rate,
// recording seconds and the modeled cycle breakdown.
func (sw *simWorld) compute(p *sim.Process, rank int, phase string, flops, rate float64, scalar bool) {
	if flops <= 0 {
		return
	}
	sec := flops / rate
	p.Delay(sec)
	rep := sw.reports[rank].phase(phase)
	rep.ComputeSec += sec
	rep.Cycles.Add(sw.m.CycleSplit(sec, sw.cfg, scalar))
}

func (sw *simWorld) nodeOf(rank int) int { return rank / sw.cfg.RanksPerNode }

// masterVecRate models the master's CG vector arithmetic: memory-bound
// axpy/dot traffic (≈12 bytes per flop) on its share of node memory
// bandwidth, capped by the scalar issue rate.
func (sw *simWorld) masterVecRate() float64 {
	memRate := sw.m.MemBandwidth / float64(sw.cfg.RanksPerNode) / 12
	sr := sw.m.ScalarRate(sw.cfg)
	return math.Min(memRate, sr)
}

// Simulate replays one training run (load_data + one HF iteration,
// scaled to HFIters) of the given workload on the machine under the
// configuration. shards optionally gives each worker's training-frame
// share (len = ranks−1); nil means a perfectly even split. Sample and
// held-out shards scale proportionally. Reports in the result are scaled
// to the full run.
func Simulate(m bgq.MachineSpec, cfg bgq.Config, counts AlgoCounts, shards []int64) (*RunResult, error) {
	if err := cfg.Validate(m); err != nil {
		return nil, err
	}
	if err := counts.Validate(); err != nil {
		return nil, err
	}
	workers := cfg.Ranks - 1
	if workers < 1 {
		return nil, fmt.Errorf("workload: need ≥2 ranks, have %d", cfg.Ranks)
	}
	if shards == nil {
		shards = EvenShards(counts.TrainFrames, workers)
	}
	if len(shards) != workers {
		return nil, fmt.Errorf("workload: %d shards for %d workers", len(shards), workers)
	}
	var shardTotal int64
	for _, s := range shards {
		if s < 0 {
			return nil, fmt.Errorf("workload: negative shard")
		}
		shardTotal += s
	}
	if shardTotal == 0 {
		return nil, fmt.Errorf("workload: empty shards")
	}

	var shape torus.Shape
	if m.HWCollectives {
		var err error
		shape, err = torus.ShapeFor(cfg.Nodes())
		if err != nil {
			return nil, err
		}
	}

	eng := sim.NewEngine()
	sw := &simWorld{eng: eng, m: m, cfg: cfg, shape: shape, counts: counts}
	sw.gate = sim.NewGate(eng, cfg.Ranks, func() float64 { return sw.pending })
	sw.reports = make([]RankReport, cfg.Ranks)
	for i := range sw.reports {
		sw.reports[i] = make(RankReport)
	}

	mailboxes := make([]*sim.Mailbox, cfg.Ranks)
	for w := 1; w < cfg.Ranks; w++ {
		mailboxes[w] = sim.NewMailbox(eng)
	}

	paramBytes := counts.ParamBytes()
	cgIters := int(math.Round(counts.CGItersPerHF))
	if cgIters < 1 {
		cgIters = 1
	}
	evals := int(math.Round(counts.LossEvalsPerHF))
	if evals < 1 {
		evals = 1
	}
	bcastT := m.BcastTime(paramBytes, cfg, shape)
	reduceT := m.ReduceTime(paramBytes, cfg, shape)
	smallReduceT := m.ReduceTime(16, cfg, shape)
	gemmRate := m.GemmRate(cfg)
	scalarRate := m.ScalarRate(cfg)

	var loadDataEnd float64

	// Curvature samples are drawn at utterance granularity (§IV: "a small
	// percentage of the data" per CG round): distribute whole utterances
	// over workers. Once there are fewer sampled utterances than workers,
	// per-worker curvature work stops shrinking — the utterance-floor that
	// bends the scaling curve past 4096 ranks and the source of the
	// worker_curvature_product variance in the paper's Figure 3.
	sampleUtts := counts.SampleFrames / counts.MeanUttFrames
	if sampleUtts < 1 {
		sampleUtts = 1
	}
	baseUtts := sampleUtts / int64(workers)
	extraUtts := sampleUtts % int64(workers)

	// Worker program.
	for w := 1; w < cfg.Ranks; w++ {
		w := w
		frac := float64(shards[w-1]) / float64(shardTotal)
		trainF := float64(shards[w-1])
		uttCount := baseUtts
		if int64(w) <= extraUtts {
			uttCount++
		}
		sampleF := float64(uttCount * counts.MeanUttFrames)
		smallGemmRate := m.SmallBatchGemmRate(cfg, uttCount)
		heldF := frac * float64(counts.HeldFrames)
		eng.Spawn(fmt.Sprintf("worker-%d", w), func(p *sim.Process) {
			rep := sw.reports[w]
			// load_data: wait for the master's point-to-point shard.
			t0 := eng.Now()
			msg := mailboxes[w].Get(p)
			ld := rep.phase("load_data")
			ld.P2PSec += eng.Now() - t0
			ld.P2PBytes += int64(msg.Bytes)
			sw.collective(p, w, "load_data", m.MPIAlphaSec, 0) // startup barrier

			// --- one HF iteration ---
			sw.collective(p, w, "sync_weights_worker", bcastT, paramBytes)

			sw.compute(p, w, "gradient_loss", trainF*counts.GradFlopsPerFrame(), gemmRate, false)
			if counts.SeqScalarFlopsPerFrame > 0 {
				sw.compute(p, w, "gradient_loss", trainF*counts.SeqScalarFlopsPerFrame, scalarRate, true)
			}
			sw.collective(p, w, "gradient_loss", reduceT, paramBytes)
			sw.collective(p, w, "gradient_loss", smallReduceT, 16)

			for i := 0; i < cgIters; i++ {
				sw.collective(p, w, "worker_curvature_product", bcastT, paramBytes)
				// The curvature sample is a small minibatch: it cannot feed
				// all the cores of a fat rank (SmallBatchGemmRate).
				sw.compute(p, w, "worker_curvature_product", sampleF*counts.GNFlopsPerFrame(), smallGemmRate, false)
				sw.collective(p, w, "worker_curvature_product", reduceT, paramBytes)
			}

			for e := 0; e < evals; e++ {
				sw.collective(p, w, "loss_eval", bcastT, paramBytes)
				sw.compute(p, w, "loss_eval", heldF*counts.EvalFlopsPerFrame(), gemmRate, false)
				if counts.SeqScalarFlopsPerFrame > 0 {
					sw.compute(p, w, "loss_eval", heldF*counts.SeqScalarFlopsPerFrame, scalarRate, true)
				}
				sw.collective(p, w, "loss_eval", smallReduceT, 16)
			}
		})
	}

	// Master program.
	injection := sim.NewResource("master-injection")
	eng.Spawn("master", func(p *sim.Process) {
		rep := sw.reports[0]
		// load_data: serialized point-to-point shard distribution — the
		// master-side bottleneck that grows with rank count (Fig 2/4).
		for w := 1; w < cfg.Ranks; w++ {
			bytes := shards[w-1] * counts.BytesPerFrame
			// Marshaling the shard (memory-bound copy) plus the fixed
			// per-message software setup, both on the master's CPU: the
			// reason master load_data cycles grow with rank count in
			// Figure 2 even at constant total bytes.
			sw.compute(p, 0, "load_data", float64(bytes)/4+m.P2PSetupSec*sw.masterVecRate(), sw.masterVecRate(), true)
			ld := rep.phase("load_data")
			t0 := eng.Now()
			p.Delay(m.MPIAlphaSec)
			injection.AcquireFor(p, m.InjectionTime(bytes))
			ld.P2PSec += eng.Now() - t0
			ld.P2PBytes += bytes
			hops := 0
			if m.HWCollectives {
				hops = sw.shape.HopCount(sw.nodeOf(0), sw.nodeOf(w)%sw.shape.Size())
			}
			mailboxes[w].PutAt(eng.Now()+float64(hops)*m.HopLatencySec, sim.Message{Src: 0, Bytes: int(bytes)})
		}
		sw.collective(p, 0, "load_data", m.MPIAlphaSec, 0)
		loadDataEnd = eng.Now()

		// --- one HF iteration ---
		sw.collective(p, 0, "sync_weights_master", bcastT, paramBytes)

		sw.collective(p, 0, "gradient_loss", reduceT, paramBytes)
		sw.collective(p, 0, "gradient_loss", smallReduceT, 16)

		vecRate := sw.masterVecRate()
		for i := 0; i < cgIters; i++ {
			sw.compute(p, 0, "cg_minimize", cgVectorFlopsPerParam*float64(counts.Params), vecRate, true)
			sw.collective(p, 0, "cg_minimize", bcastT, paramBytes)
			sw.collective(p, 0, "cg_minimize", reduceT, paramBytes)
		}

		for e := 0; e < evals; e++ {
			// θ+αd trial construction.
			sw.compute(p, 0, "loss_eval", 2*float64(counts.Params), vecRate, true)
			sw.collective(p, 0, "loss_eval", bcastT, paramBytes)
			sw.collective(p, 0, "loss_eval", smallReduceT, 16)
		}
	})

	if stuck := eng.Run(); stuck != 0 {
		return nil, fmt.Errorf("workload: simulation deadlocked with %d stuck processes", stuck)
	}

	iterSec := eng.Now() - loadDataEnd
	res := &RunResult{
		Machine:     m.Name,
		Config:      cfg,
		LoadDataSec: loadDataEnd,
		IterSec:     iterSec,
		TotalSec:    loadDataEnd + float64(counts.HFIters)*iterSec,
		Master:      sw.reports[0],
		WorkerMean:  meanReports(sw.reports[1:]),
	}
	// Scale per-iteration phases to the full run; load_data happened once.
	skip := map[string]bool{"load_data": true}
	res.Master.scale(float64(counts.HFIters), skip)
	res.WorkerMean.scale(float64(counts.HFIters), skip)
	return res, nil
}

// meanReports averages per-phase activity across ranks.
func meanReports(reports []RankReport) RankReport {
	out := make(RankReport)
	n := float64(len(reports))
	for _, r := range reports {
		for name, p := range r {
			dst := out.phase(name)
			dst.ComputeSec += p.ComputeSec / n
			dst.CollSec += p.CollSec / n
			dst.P2PSec += p.P2PSec / n
			dst.CollBytes += int64(float64(p.CollBytes) / n)
			dst.P2PBytes += int64(float64(p.P2PBytes) / n)
			dst.Cycles.Committed += p.Cycles.Committed / n
			dst.Cycles.AXUStall += p.Cycles.AXUStall / n
			dst.Cycles.IUEmpty += p.Cycles.IUEmpty / n
		}
	}
	return out
}

// EvenShards splits total frames evenly over workers (remainder spread
// one frame at a time).
func EvenShards(total int64, workers int) []int64 {
	out := make([]int64, workers)
	base := total / int64(workers)
	rem := total % int64(workers)
	for i := range out {
		out[i] = base
		if int64(i) < rem {
			out[i]++
		}
	}
	return out
}
