package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/bgq"
	"repro/internal/corpus"
	"repro/internal/hf"
	"repro/internal/nn"
)

func TestCountsForTopology(t *testing.T) {
	// 3-4-2: params = 3·4+4 + 4·2+2 = 26; fwd = 2(12+8) = 40.
	params, fwd, bpf := CountsForTopology([]int{3, 4, 2})
	if params != 26 {
		t.Fatalf("params %d", params)
	}
	if fwd != 40 {
		t.Fatalf("fwd flops %v", fwd)
	}
	if bpf != 3*4+8 {
		t.Fatalf("bytes/frame %d", bpf)
	}
	// Cross-check against nn.Topology.
	topo := nn.NewTopology(3, 4, 2)
	p2, _ := TopologyForProblem(topo)
	if p2 != int64(topo.NumParams()) {
		t.Fatalf("params %d vs topology %d", p2, topo.NumParams())
	}
}

func TestPresetsValid(t *testing.T) {
	for _, c := range []AlgoCounts{Preset50h(false), Preset50h(true), Preset400h(false), Preset400h(true)} {
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	p := Preset50h(false)
	// The paper's range: 10-50M parameters for the 50h task.
	if p.Params < 10e6 || p.Params > 50e6 {
		t.Fatalf("50h params %d outside the paper's 10-50M range", p.Params)
	}
	if Preset400h(false).Params < 100e6 {
		t.Fatalf("400h params %d; §VIII says over 100M", Preset400h(false).Params)
	}
	if p.TrainFrames != 18_000_000 {
		t.Fatalf("50h frames %d, want 18M", p.TrainFrames)
	}
	seq := Preset50h(true)
	if seq.SeqScalarFlopsPerFrame <= 0 || seq.CGItersPerHF <= p.CGItersPerHF || seq.HFIters <= p.HFIters {
		t.Fatalf("sequence preset not harder than CE: %+v", seq)
	}
}

func TestValidateRejectsBadCounts(t *testing.T) {
	good := Preset50h(false)
	for _, mut := range []func(*AlgoCounts){
		func(c *AlgoCounts) { c.Params = 0 },
		func(c *AlgoCounts) { c.TrainFrames = -1 },
		func(c *AlgoCounts) { c.CGItersPerHF = 0 },
		func(c *AlgoCounts) { c.HFIters = 0 },
		func(c *AlgoCounts) { c.MeanUttFrames = 0 },
	} {
		c := good
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("mutation accepted: %+v", c)
		}
	}
}

func TestEvenShards(t *testing.T) {
	s := EvenShards(10, 3)
	if len(s) != 3 || s[0]+s[1]+s[2] != 10 {
		t.Fatalf("shards %v", s)
	}
	for _, v := range s {
		if v < 3 || v > 4 {
			t.Fatalf("uneven shards %v", s)
		}
	}
}

func TestSimulateBasicInvariants(t *testing.T) {
	m := bgq.BlueGeneQ()
	cfg := bgq.Config{Ranks: 64, RanksPerNode: 4, ThreadsPerRank: 16}
	r, err := Simulate(m, cfg, Preset50h(false), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.LoadDataSec <= 0 || r.IterSec <= 0 {
		t.Fatalf("non-positive times: %+v", r)
	}
	if math.Abs(r.TotalSec-(r.LoadDataSec+30*r.IterSec)) > 1e-6*r.TotalSec {
		t.Fatalf("TotalSec inconsistent: %v vs %v + 30·%v", r.TotalSec, r.LoadDataSec, r.IterSec)
	}
	// Master must report the paper's master-side functions, workers theirs.
	for _, name := range []string{"load_data", "sync_weights_master", "gradient_loss", "cg_minimize", "loss_eval"} {
		if r.Master[name] == nil {
			t.Fatalf("master missing phase %q", name)
		}
	}
	for _, name := range []string{"load_data", "sync_weights_worker", "gradient_loss", "worker_curvature_product", "loss_eval"} {
		if r.WorkerMean[name] == nil {
			t.Fatalf("worker missing phase %q", name)
		}
	}
	// Cycle accounting: breakdown components non-negative, committed > 0
	// wherever compute happened.
	for name, ph := range r.WorkerMean {
		if ph.ComputeSec > 0 && ph.Cycles.Committed <= 0 {
			t.Fatalf("phase %q: compute without committed cycles", name)
		}
		if ph.Cycles.AXUStall < 0 || ph.Cycles.IUEmpty < 0 {
			t.Fatalf("phase %q: negative cycles", name)
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	m := bgq.BlueGeneQ()
	cfg := bgq.Config{Ranks: 128, RanksPerNode: 4, ThreadsPerRank: 16}
	a, err := Simulate(m, cfg, Preset50h(false), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(m, cfg, Preset50h(false), nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalSec != b.TotalSec || a.IterSec != b.IterSec {
		t.Fatalf("nondeterministic: %v vs %v", a.TotalSec, b.TotalSec)
	}
}

func TestSimulateErrors(t *testing.T) {
	m := bgq.BlueGeneQ()
	if _, err := Simulate(m, bgq.Config{Ranks: 1, RanksPerNode: 1, ThreadsPerRank: 1}, Preset50h(false), nil); err == nil {
		t.Fatal("1 rank must fail")
	}
	if _, err := Simulate(m, bgq.Config{Ranks: 64, RanksPerNode: 4, ThreadsPerRank: 16}, Preset50h(false), []int64{1, 2}); err == nil {
		t.Fatal("wrong shard count must fail")
	}
	bad := Preset50h(false)
	bad.Params = 0
	if _, err := Simulate(m, bgq.Config{Ranks: 64, RanksPerNode: 4, ThreadsPerRank: 16}, bad, nil); err == nil {
		t.Fatal("bad counts must fail")
	}
}

// Figure 1(a) shape: at 64 threads/node the paper finds
// time(2048-2-32) ≲ time(4096-4-16) < time(1024-1-64), and adding
// threads per node (16→32→64) always helps.
func TestFig1aShape(t *testing.T) {
	m := bgq.BlueGeneQ()
	c := Preset50h(false)
	run := func(cfg bgq.Config) float64 {
		r, err := Simulate(m, cfg, c, nil)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Label(), err)
		}
		return r.TotalSec
	}
	t16 := run(bgq.Config{Ranks: 1024, RanksPerNode: 1, ThreadsPerRank: 16})
	t32 := run(bgq.Config{Ranks: 1024, RanksPerNode: 1, ThreadsPerRank: 32})
	t64 := run(bgq.Config{Ranks: 1024, RanksPerNode: 1, ThreadsPerRank: 64})
	if !(t16 > t32 && t32 > t64) {
		t.Fatalf("thread scaling not monotone: 16→%v 32→%v 64→%v", t16, t32, t64)
	}
	t2048 := run(bgq.Config{Ranks: 2048, RanksPerNode: 2, ThreadsPerRank: 32})
	t4096 := run(bgq.Config{Ranks: 4096, RanksPerNode: 4, ThreadsPerRank: 16})
	if !(t2048 <= t4096) {
		t.Fatalf("2048-2-32 (%v) should be ≤ 4096-4-16 (%v)", t2048, t4096)
	}
	if !(t4096 < t64) {
		t.Fatalf("4096-4-16 (%v) should beat 1024-1-64 (%v)", t4096, t64)
	}
	// "slightly better": within 20% of each other.
	if t4096/t2048 > 1.2 {
		t.Fatalf("2048-2-32 vs 4096-4-16 gap too large: %v vs %v", t2048, t4096)
	}
}

// Figure 1(b) shape: on 400 h, two racks (8192-4-16) give a further
// speedup over one rack (4096-4-16) of roughly the paper's 22% — clearly
// sub-linear (×2 hardware, far less than ×2 speed).
func TestFig1bShape(t *testing.T) {
	m := bgq.BlueGeneQ()
	c := Preset400h(false)
	r4, err := Simulate(m, bgq.Config{Ranks: 4096, RanksPerNode: 4, ThreadsPerRank: 16}, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Simulate(m, bgq.Config{Ranks: 8192, RanksPerNode: 4, ThreadsPerRank: 16}, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	gain := r4.TotalSec/r8.TotalSec - 1
	if gain < 0.10 || gain > 0.50 {
		t.Fatalf("8192 vs 4096 gain %.0f%%, want 10-50%% (paper: 22%%)", gain*100)
	}
	// §VIII: 400 h trains in ≈6.3 h on two racks.
	hours := r8.TotalSec / 3600
	if hours < 4 || hours > 10 {
		t.Fatalf("two-rack 400h training %.1f h, want ≈6.3 h", hours)
	}
}

// Table I shape: BG/Q-4096 vs Intel-96 speedups in the paper's
// neighbourhood, frequency-adjusted by 2.9/1.6, with the sequence
// criterion's speedup below cross-entropy's.
func TestTable1Shape(t *testing.T) {
	bg := bgq.BlueGeneQ()
	intel := bgq.IntelXeonCluster()
	speedup := func(seq bool) float64 {
		c := Preset50h(seq)
		ri, err := Simulate(intel, bgq.Config{Ranks: 96, RanksPerNode: 2, ThreadsPerRank: 8}, c, nil)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := Simulate(bg, bgq.Config{Ranks: 4096, RanksPerNode: 4, ThreadsPerRank: 16}, c, nil)
		if err != nil {
			t.Fatal(err)
		}
		return ri.TotalSec / rb.TotalSec
	}
	ce := speedup(false)
	seq := speedup(true)
	if ce < 3 || ce > 10 {
		t.Fatalf("CE speedup %.2f outside [3,10] (paper: 6.9)", ce)
	}
	if seq < 2.5 || seq > 8 {
		t.Fatalf("sequence speedup %.2f outside [2.5,8] (paper: 4.5)", seq)
	}
	if seq >= ce {
		t.Fatalf("sequence speedup (%.2f) must trail cross-entropy (%.2f)", seq, ce)
	}
	adj := ce * 2.9 / 1.6
	if adj < 6 || adj > 18 {
		t.Fatalf("adjusted CE speedup %.2f outside [6,18] (paper: 12.6)", adj)
	}
}

// Scaling shape: near-linear to 1024 ranks, bending by 2048-4096
// (consistent with Figure 1(a)'s near-equal 2048/4096-rank configs),
// essentially flat past 8192.
func TestScalingShape(t *testing.T) {
	m := bgq.BlueGeneQ()
	c := Preset50h(false)
	total := map[int]float64{}
	for _, ranks := range []int{64, 1024, 4096, 8192, 16384} {
		r, err := Simulate(m, bgq.Config{Ranks: ranks, RanksPerNode: 4, ThreadsPerRank: 16}, c, nil)
		if err != nil {
			t.Fatal(err)
		}
		total[ranks] = r.TotalSec
	}
	eff1024 := (total[64] / total[1024]) / (1024.0 / 64.0)
	if eff1024 < 0.7 {
		t.Fatalf("efficiency at 1024 ranks %.2f, want ≥0.7 (near-linear)", eff1024)
	}
	gain8k := total[4096] / total[8192]
	if gain8k > 1.5 {
		t.Fatalf("4096→8192 gain %.2f×, should be clearly sub-linear (<1.5)", gain8k)
	}
	gain16k := total[8192] / total[16384]
	if gain16k > 1.15 {
		t.Fatalf("8192→16384 gain %.2f×, should be nearly flat", gain16k)
	}
}

// Figures 2/4 shape: master load_data (p2p) and sync_weights (collective)
// grow with rank count; workers' gradient compute shrinks (Fig 3).
func TestMasterTrendsWithRanks(t *testing.T) {
	m := bgq.BlueGeneQ()
	c := Preset50h(false)
	r1, err := Simulate(m, bgq.Config{Ranks: 1024, RanksPerNode: 1, ThreadsPerRank: 64}, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Simulate(m, bgq.Config{Ranks: 4096, RanksPerNode: 4, ThreadsPerRank: 16}, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Master["load_data"].P2PSec <= r1.Master["load_data"].P2PSec {
		t.Fatalf("master load_data p2p should grow with ranks: %v vs %v",
			r1.Master["load_data"].P2PSec, r4.Master["load_data"].P2PSec)
	}
	if r4.Master["sync_weights_master"].CollSec <= r1.Master["sync_weights_master"].CollSec {
		t.Fatalf("master sync_weights should grow with ranks: %v vs %v",
			r1.Master["sync_weights_master"].CollSec, r4.Master["sync_weights_master"].CollSec)
	}
	if r4.WorkerMean["gradient_loss"].ComputeSec >= r1.WorkerMean["gradient_loss"].ComputeSec {
		t.Fatalf("worker gradient compute should shrink with ranks: %v vs %v",
			r1.WorkerMean["gradient_loss"].ComputeSec, r4.WorkerMean["gradient_loss"].ComputeSec)
	}
	// Figure 5 shape: worker MPI time is dominated by collectives.
	coll, p2p := r4.WorkerMean.TotalMPI()
	if coll <= p2p {
		t.Fatalf("worker MPI should be collective-dominated: coll %v vs p2p %v", coll, p2p)
	}
}

// Load-balance ablation (§V-C): simulating with shards from the naive
// partitioner must be slower than with the paper's sorted-greedy shards.
func TestLoadBalanceAblation(t *testing.T) {
	m := bgq.BlueGeneQ()
	c := Preset50h(false)
	cfg := bgq.Config{Ranks: 256, RanksPerNode: 4, ThreadsPerRank: 16}
	lengths := corpus.GenerateLengths(corpus.Config{Seed: 42, NumUtterances: 4000})
	naive := ShardsFromPartition(lengths, cfg.Ranks-1, corpus.RoundRobin{}, c.TrainFrames)
	sorted := ShardsFromPartition(lengths, cfg.Ranks-1, corpus.SortedGreedy{}, c.TrainFrames)
	rn, err := Simulate(m, cfg, c, naive)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Simulate(m, cfg, c, sorted)
	if err != nil {
		t.Fatal(err)
	}
	if rs.TotalSec >= rn.TotalSec {
		t.Fatalf("sorted-greedy (%v) should beat round-robin (%v)", rs.TotalSec, rn.TotalSec)
	}
}

// §V-B: broadcast-based weight sync must beat the socket-era serial
// point-to-point push, increasingly so at scale.
func TestWeightSyncBcastBeatsP2P(t *testing.T) {
	m := bgq.BlueGeneQ()
	c := Preset50h(false)
	for _, ranks := range []int{64, 1024, 4096} {
		cfg := bgq.Config{Ranks: ranks, RanksPerNode: 4, ThreadsPerRank: 16}
		shape, err := torusShapeFor(cfg)
		if err != nil {
			t.Fatal(err)
		}
		bcast := m.BcastTime(c.ParamBytes(), cfg, shape)
		p2p := WeightSyncP2PTime(m, cfg, c.ParamBytes())
		if bcast >= p2p {
			t.Fatalf("ranks=%d: bcast %v should beat serial p2p %v", ranks, bcast, p2p)
		}
		if ranks == 4096 && p2p/bcast < 100 {
			t.Fatalf("at 4096 ranks the gap should be enormous, got %.1f×", p2p/bcast)
		}
	}
}

func TestMeasureCountsFromRealRun(t *testing.T) {
	c := corpus.Generate(corpus.Config{
		Seed: 3, NumUtterances: 20, MeanSeconds: 0.3, FeatDim: 6, Context: 1, NumStates: 4,
	})
	train, held := c.Split(5)
	prob := coreProblem(c, train, held)
	base := Preset50h(false)
	got, err := MeasureCounts(base, prob, hf.Config{MaxIterations: 3, CG: hf.CGOpts{MaxIters: 10, MinIters: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if got.CGItersPerHF < 1 || got.CGItersPerHF > 10 {
		t.Fatalf("measured CG iters %v", got.CGItersPerHF)
	}
	if got.LossEvalsPerHF < 1 {
		t.Fatalf("measured loss evals %v", got.LossEvalsPerHF)
	}
	// Geometry fields must be untouched.
	if got.Params != base.Params || got.TrainFrames != base.TrainFrames {
		t.Fatal("MeasureCounts must only change algorithm statistics")
	}
}

// Property: EvenShards conserves the total and spreads within one frame.
func TestEvenShardsProperty(t *testing.T) {
	f := func(totalSeed uint32, wSeed uint8) bool {
		total := int64(totalSeed % 1000000)
		workers := int(wSeed%31) + 1
		s := EvenShards(total, workers)
		if len(s) != workers {
			return false
		}
		var sum, min, max int64
		min = 1 << 62
		for _, v := range s {
			sum += v
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		return sum == total && max-min <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: ShardsFromPartition conserves the requested total frames.
func TestShardsFromPartitionConservesTotal(t *testing.T) {
	lengths := corpus.GenerateLengths(corpus.Config{Seed: 31, NumUtterances: 500})
	f := func(wSeed uint8, sorted bool) bool {
		workers := int(wSeed%15) + 2
		var part corpus.Partitioner = corpus.RoundRobin{}
		if sorted {
			part = corpus.SortedGreedy{}
		}
		const total = int64(1_000_000)
		shards := ShardsFromPartition(lengths, workers, part, total)
		var sum int64
		for _, s := range shards {
			if s < 0 {
				return false
			}
			sum += s
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGradPassFactor(t *testing.T) {
	ce := Preset50h(false)
	seq := Preset50h(true)
	if ce.GradFlopsPerFrame() >= seq.GradFlopsPerFrame() {
		t.Fatal("sequence gradient must cost more GEMM flops than CE")
	}
	if ce.EvalFlopsPerFrame() != ce.FwdFlopsPerFrame {
		t.Fatal("CE eval is one forward pass")
	}
	if seq.EvalFlopsPerFrame() <= ce.EvalFlopsPerFrame() {
		t.Fatal("sequence eval must cost more than CE eval")
	}
}

// The sequence workload must simulate strictly slower than CE on both
// machines (Table I's rows).
func TestSequenceWorkloadSlower(t *testing.T) {
	for _, m := range []bgq.MachineSpec{bgq.BlueGeneQ(), bgq.IntelXeonCluster()} {
		cfg := bgq.Config{Ranks: 64, RanksPerNode: 4, ThreadsPerRank: 16}
		if m.Name == "Intel-Xeon" {
			cfg = bgq.Config{Ranks: 96, RanksPerNode: 2, ThreadsPerRank: 8}
		}
		ce, err := Simulate(m, cfg, Preset50h(false), nil)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := Simulate(m, cfg, Preset50h(true), nil)
		if err != nil {
			t.Fatal(err)
		}
		if seq.TotalSec <= ce.TotalSec {
			t.Fatalf("%s: sequence (%v) must be slower than CE (%v)", m.Name, seq.TotalSec, ce.TotalSec)
		}
	}
}
