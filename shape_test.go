package repro

import (
	"repro/internal/bgq"
	"repro/internal/torus"
)

// torusShapeFor resolves the torus shape of a BG/Q configuration for the
// benchmark harness.
func torusShapeFor(cfg bgq.Config) (torus.Shape, error) {
	return torus.ShapeFor(cfg.Nodes())
}
